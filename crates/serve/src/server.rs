//! The socket daemon: a non-blocking acceptor, one worker thread per
//! connection, a single writer thread owning the matching engine, and a
//! lock-free-published snapshot readers serve from.
//!
//! ## Snapshot isolation
//!
//! The writer is the only thread that touches the engine. After every
//! applied batch it publishes `Arc<Published>` — a writer sequence
//! number plus an engine snapshot (graph clone + counters + cardinality,
//! and in weighted mode the matching weight) — through a [`SwapCell`].
//! `query`/`state`/`stats`/`snapshot` readers grab the current `Arc`
//! wait-free and answer from it: a read issued mid-repair sees the
//! pre-batch snapshot, never waits for the repair to finish, and — since
//! the swap cell replaced the old mutex-guarded `Arc` — never contends
//! on a lock with other readers either.
//!
//! ## Engines
//!
//! The daemon serves either engine behind one protocol:
//!
//! * [`Server::start`] — cardinality ([`DynMatching`]): the original
//!   service; `insert u v` / `delete u v`, `query` answers
//!   `matching <n>`.
//! * [`Server::start_weighted`] — weighted ([`WDynMatching`]):
//!   `insert u v [w]` (missing weight = 1.0, so unweighted clients work
//!   unchanged), `query` answers `matching <n> weight <w>`, and `stats`
//!   reports the auction-repair counters. A weighted insert sent to a
//!   cardinality daemon is answered with an error rather than silently
//!   dropping the weight.
//!
//! ## Adaptive admission batching and backpressure
//!
//! Updates are admitted through a bounded queue
//! ([`ServerConfig::queue_cap`]). The writer coalesces admitted updates
//! into one repair batch per wake-up, closing the batch at either
//! watermark: [`ServerConfig::max_batch`] updates (size) or
//! [`ServerConfig::max_delay`] since the batch opened (latency). When
//! the queue is full the connection worker answers `busy` immediately —
//! explicit backpressure instead of unbounded buffering — and the client
//! retries. `sync` is a barrier: it rides the same queue, closes the
//! open batch, and is acked only after everything admitted before it has
//! been applied *and published*.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] (or a client's `shutdown` verb, awaited by
//! [`Server::join`]) stops the acceptor, lets workers finish their
//! current frames, then drains every admitted update through the writer
//! before returning the engine — admitted work is never dropped.

use crate::proto::{parse_command, verb_of, Command, LineFramer};
use crate::swap::SwapCell;
use mcm_dyn::{
    DynMatching, DynStats, StateSnapshot, Update, WDynMatching, WDynStats, WStateSnapshot, WUpdate,
};
use mcm_sparse::io::{write_matrix_market_file, write_matrix_market_weighted_file};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Called with each batch after it is closed and before it is applied —
/// the hook the isolation tests use to hold a repair mid-flight while
/// asserting that reads still answer. Batches are delivered in the
/// weighted update vocabulary for both engines (a cardinality daemon's
/// inserts carry weight 1.0).
pub type ApplyHook = Arc<dyn Fn(&[WUpdate]) + Send + Sync>;

/// Daemon tuning knobs; the defaults suit a loopback service.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Size watermark: close the open batch at this many updates.
    pub max_batch: usize,
    /// Latency watermark: close the open batch this long after it opened.
    pub max_delay: Duration,
    /// Bound of the admission queue; a full queue answers `busy`.
    pub queue_cap: usize,
    /// Test hook run with each closed batch before it is applied.
    pub on_apply: Option<ApplyHook>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 512,
            max_delay: Duration::from_millis(1),
            queue_cap: 4096,
            on_apply: None,
        }
    }
}

/// The engine behind a daemon: cardinality or weighted, one protocol.
pub enum Engine {
    /// Maximum cardinality ([`DynMatching`]).
    Card(Box<DynMatching>),
    /// Maximum weight ([`WDynMatching`]).
    Weighted(Box<WDynMatching>),
}

impl Engine {
    fn apply_batch(&mut self, batch: &[WUpdate]) {
        match self {
            Engine::Card(dm) => {
                let unweighted: Vec<Update> = batch
                    .iter()
                    .map(|u| match *u {
                        WUpdate::Insert(r, c, _) => Update::Insert(r, c),
                        WUpdate::Delete(r, c) => Update::Delete(r, c),
                    })
                    .collect();
                dm.apply_batch(&unweighted);
            }
            Engine::Weighted(wm) => {
                wm.apply_batch(batch);
            }
        }
    }

    fn snapshot(&self) -> Snap {
        match self {
            Engine::Card(dm) => Snap::Card(dm.snapshot_state()),
            Engine::Weighted(wm) => Snap::Weighted(wm.snapshot_state()),
        }
    }

    fn cardinality(&self) -> usize {
        match self {
            Engine::Card(dm) => dm.cardinality(),
            Engine::Weighted(wm) => wm.cardinality(),
        }
    }

    fn dims(&self) -> (usize, usize) {
        match self {
            Engine::Card(dm) => (dm.graph().n1(), dm.graph().n2()),
            Engine::Weighted(wm) => (wm.graph().nrows(), wm.graph().ncols()),
        }
    }

    fn algo_name(&self) -> &'static str {
        match self {
            Engine::Card(dm) => dm.opts().algo.name(),
            Engine::Weighted(_) => "wauction",
        }
    }

    /// Unwraps the cardinality engine; panics on a weighted daemon.
    pub fn expect_card(self) -> DynMatching {
        match self {
            Engine::Card(dm) => *dm,
            Engine::Weighted(_) => panic!("daemon was running the weighted engine"),
        }
    }

    /// Unwraps the weighted engine; panics on a cardinality daemon.
    pub fn expect_weighted(self) -> WDynMatching {
        match self {
            Engine::Weighted(wm) => *wm,
            Engine::Card(_) => panic!("daemon was running the cardinality engine"),
        }
    }
}

/// An engine snapshot as published to readers.
pub enum Snap {
    /// Cardinality engine state.
    Card(StateSnapshot),
    /// Weighted engine state.
    Weighted(WStateSnapshot),
}

impl Snap {
    /// Matching cardinality at publish time.
    pub fn cardinality(&self) -> usize {
        match self {
            Snap::Card(s) => s.cardinality,
            Snap::Weighted(s) => s.cardinality,
        }
    }

    /// Matching weight at publish time (weighted engine only).
    pub fn weight(&self) -> Option<f64> {
        match self {
            Snap::Card(_) => None,
            Snap::Weighted(s) => Some(s.weight),
        }
    }

    /// Live edge count at publish time.
    pub fn nnz(&self) -> usize {
        match self {
            Snap::Card(s) => s.nnz(),
            Snap::Weighted(s) => s.nnz(),
        }
    }

    /// Overlay compaction epoch at publish time.
    pub fn epoch(&self) -> u64 {
        match self {
            Snap::Card(s) => s.epoch(),
            Snap::Weighted(s) => s.epoch(),
        }
    }
}

/// What the writer publishes after each batch; readers answer from this.
pub struct Published {
    /// Batches applied-and-published so far (0 = the initial state).
    pub seq: u64,
    /// Immutable engine state as of `seq`.
    pub snap: Snap,
}

/// The `stats` response line of the cardinality engine, shared verbatim
/// by the stdin loop and the socket daemon (and asserted by
/// `tests/cli.rs`).
pub fn format_stats_line(
    s: &DynStats,
    cardinality: usize,
    nnz: usize,
    epoch: u64,
    configured_algo: &str,
) -> String {
    format!(
        "stats batches {} updates {} inserts {} deletes {} matched_deletes {} \
         immediate {} searches {} repaired {} path_edges {} max_path {} \
         interior {} sweeps {} fallbacks {} cert_seeds {} cardinality {} \
         nnz {} epoch {} incremental {} warm_start {} algo {}",
        s.batches,
        s.updates,
        s.inserts,
        s.deletes,
        s.matched_deletes,
        s.immediate_matches,
        s.local_searches,
        s.repaired,
        s.repair_path_edges,
        s.max_repair_path,
        s.interior_inserts,
        s.global_sweeps,
        s.fallbacks,
        s.cert_seeds,
        cardinality,
        nnz,
        epoch,
        s.batches - s.fallbacks,
        s.fallbacks,
        // Which engine actually serviced the last fallback; until one
        // runs, the configured choice (`auto` included).
        if s.last_algo.is_empty() { configured_algo } else { s.last_algo },
    )
}

/// The `stats` response line of the weighted engine: price-repair
/// counters plus the weight ledger.
pub fn format_wstats_line(
    s: &WDynStats,
    cardinality: usize,
    weight: f64,
    nnz: usize,
    epoch: u64,
) -> String {
    format!(
        "stats batches {} updates {} inserts {} deletes {} matched_deletes {} \
         dirty {} rebids {} incremental {} cold {} weight_gained {} weight_lost {} \
         cardinality {} weight {} nnz {} epoch {} algo wauction",
        s.batches,
        s.updates,
        s.inserts,
        s.deletes,
        s.matched_deletes,
        s.dirty_bidders,
        s.rebids,
        s.incremental_batches,
        s.cold_solves,
        s.weight_gained,
        s.weight_lost,
        cardinality,
        weight,
        nnz,
        epoch,
    )
}

enum WriterMsg {
    Update(WUpdate),
    /// Barrier: acked with the post-publication sequence + cardinality.
    Sync(mpsc::Sender<SyncAck>),
}

struct SyncAck {
    seq: u64,
    cardinality: usize,
}

struct Shared {
    /// Lock-free snapshot cell: the read path never takes a mutex.
    published: SwapCell<Published>,
    /// Updates admitted but not yet absorbed by the writer.
    queue_depth: AtomicUsize,
    /// Live connections (drives the `mcmd_connections` gauge).
    connections: AtomicUsize,
    /// Set by [`Server::shutdown`]/[`Server::finish`].
    stop: AtomicBool,
    /// Set by a client's `shutdown` verb; [`Server::join`] watches it.
    shutdown_verb: AtomicBool,
    /// Whether the writer owns the weighted engine (shapes responses).
    weighted: bool,
    /// Configured fallback engine name, for the `stats` response.
    algo_name: &'static str,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.shutdown_verb.load(Ordering::Relaxed)
    }

    fn published(&self) -> Arc<Published> {
        self.published.load()
    }
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Server::shutdown)/[`join`](Server::join) detaches the
/// threads (the process exit reaps them); tests always join.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    tx: Option<SyncSender<WriterMsg>>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<Engine>>,
}

impl Server {
    /// Binds, publishes the initial snapshot, and starts the acceptor and
    /// writer threads around the cardinality engine. Returns once the
    /// socket is listening.
    pub fn start(dm: DynMatching, cfg: ServerConfig) -> std::io::Result<Server> {
        Server::start_engine(Engine::Card(Box::new(dm)), cfg)
    }

    /// As [`Server::start`], but serving the weighted engine: weighted
    /// inserts are accepted and `query`/`state`/`stats` report the
    /// matching weight.
    pub fn start_weighted(wm: WDynMatching, cfg: ServerConfig) -> std::io::Result<Server> {
        Server::start_engine(Engine::Weighted(Box::new(wm)), cfg)
    }

    fn start_engine(engine: Engine, cfg: ServerConfig) -> std::io::Result<Server> {
        mcm_obs::enable_metrics(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let dims = engine.dims();
        let shared = Arc::new(Shared {
            published: SwapCell::new(Arc::new(Published { seq: 0, snap: engine.snapshot() })),
            queue_depth: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            shutdown_verb: AtomicBool::new(false),
            weighted: matches!(engine, Engine::Weighted(_)),
            algo_name: engine.algo_name(),
        });
        let (tx, rx) = mpsc::sync_channel::<WriterMsg>(cfg.queue_cap);
        let writer = {
            let shared = shared.clone();
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("mcmd-writer".into())
                .spawn(move || writer_loop(engine, rx, shared, cfg))?
        };
        let acceptor = {
            let shared = shared.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("mcmd-accept".into())
                .spawn(move || accept_loop(listener, shared, tx, dims))?
        };
        Ok(Server {
            local_addr,
            shared,
            tx: Some(tx),
            acceptor: Some(acceptor),
            writer: Some(writer),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The currently published snapshot (what readers would answer from).
    pub fn published(&self) -> Arc<Published> {
        self.shared.published()
    }

    /// Stops accepting, drains every admitted update through the writer,
    /// and returns the engine.
    pub fn shutdown(mut self) -> Engine {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.finish()
    }

    /// Blocks until a client issues the `shutdown` verb, then drains and
    /// returns the engine (what `mcmd --listen` runs on its main thread).
    pub fn join(mut self) -> Engine {
        while !self.shared.shutdown_verb.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.finish()
    }

    fn finish(&mut self) -> Engine {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Acceptor joins its workers; when they and our handle drop the
        // last senders, the writer drains the queue and exits.
        if let Some(a) = self.acceptor.take() {
            a.join().expect("acceptor thread panicked");
        }
        drop(self.tx.take());
        self.writer.take().expect("server already finished").join().expect("writer panicked")
    }
}

fn writer_loop(
    mut engine: Engine,
    rx: mpsc::Receiver<WriterMsg>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) -> Engine {
    let mut seq = 0u64;
    let mut batch: Vec<WUpdate> = Vec::new();
    let mut syncs: Vec<mpsc::Sender<SyncAck>> = Vec::new();
    loop {
        let Ok(first) = rx.recv() else { break };
        let opened = Instant::now();
        absorb(first, &mut batch, &mut syncs, &shared);
        // A sync closes the batch immediately: its ack must cover exactly
        // what was admitted before it.
        if syncs.is_empty() {
            let deadline = opened + cfg.max_delay;
            while batch.len() < cfg.max_batch {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else { break };
                match rx.recv_timeout(left) {
                    Ok(msg) => {
                        absorb(msg, &mut batch, &mut syncs, &shared);
                        if !syncs.is_empty() {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        seq = apply_and_publish(&mut engine, &mut batch, &mut syncs, seq, &shared, &cfg);
    }
    // Senders are gone; everything queued was already delivered by the
    // draining recv() above. Apply any final partial batch.
    apply_and_publish(&mut engine, &mut batch, &mut syncs, seq, &shared, &cfg);
    engine
}

fn absorb(
    msg: WriterMsg,
    batch: &mut Vec<WUpdate>,
    syncs: &mut Vec<mpsc::Sender<SyncAck>>,
    shared: &Shared,
) {
    match msg {
        WriterMsg::Update(u) => {
            batch.push(u);
            let d = shared.queue_depth.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
            mcm_obs::gauge_set("mcmd_queue_depth", &[], d as f64);
        }
        WriterMsg::Sync(ack) => syncs.push(ack),
    }
}

fn apply_and_publish(
    engine: &mut Engine,
    batch: &mut Vec<WUpdate>,
    syncs: &mut Vec<mpsc::Sender<SyncAck>>,
    mut seq: u64,
    shared: &Shared,
    cfg: &ServerConfig,
) -> u64 {
    if !batch.is_empty() {
        if let Some(hook) = &cfg.on_apply {
            hook(batch);
        }
        let sw = mcm_obs::Stopwatch::new();
        engine.apply_batch(batch);
        mcm_obs::observe_ns("mcmd_batch_apply_seconds", &[], sw.elapsed_ns());
        mcm_obs::observe_ns("mcmd_batch_size", &[], batch.len() as u64);
        seq += 1;
        shared.published.store(Arc::new(Published { seq, snap: engine.snapshot() }));
        batch.clear();
    }
    for ack in syncs.drain(..) {
        ack.send(SyncAck { seq, cardinality: engine.cardinality() }).ok();
    }
    seq
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    tx: SyncSender<WriterMsg>,
    dims: (usize, usize),
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let tx = tx.clone();
                let spawned = std::thread::Builder::new()
                    .name("mcmd-conn".into())
                    .spawn(move || conn_loop(stream, shared, tx, dims));
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        workers.retain(|h| !h.is_finished());
    }
    drop(tx);
    for h in workers {
        h.join().ok();
    }
}

enum Flow {
    Continue,
    /// `quit`: close this connection, keep serving.
    Close,
    /// `shutdown`: close this connection and stop the daemon.
    Shutdown,
}

fn conn_loop(
    stream: TcpStream,
    shared: Arc<Shared>,
    tx: SyncSender<WriterMsg>,
    (n1, n2): (usize, usize),
) {
    let conns = shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
    mcm_obs::gauge_set("mcmd_connections", &[], conns as f64);
    serve_conn(&stream, &shared, &tx, n1, n2);
    let conns = shared.connections.fetch_sub(1, Ordering::Relaxed) - 1;
    mcm_obs::gauge_set("mcmd_connections", &[], conns as f64);
}

fn serve_conn(
    stream: &TcpStream,
    shared: &Shared,
    tx: &SyncSender<WriterMsg>,
    n1: usize,
    n2: usize,
) {
    // The read timeout doubles as the stop-flag poll interval.
    stream.set_read_timeout(Some(Duration::from_millis(25))).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else { return };
    let mut out = std::io::BufWriter::new(write_half);
    let mut framer = LineFramer::new();
    // Histogram handles cached per connection: the registry lookup takes
    // a lock, the observation itself is lock-free.
    let mut hists: HashMap<&'static str, mcm_obs::Histogram> = HashMap::new();
    let mut buf = [0u8; 8192];
    let mut reader = stream;
    'conn: loop {
        match reader.read(&mut buf) {
            Ok(0) => {
                // Orderly EOF. A half-sent command is reported, not run.
                if framer.finish().is_err() {
                    mcm_obs::counter_add("mcmd_truncated_lines_total", &[], 1);
                }
                break;
            }
            Ok(n) => {
                for line in framer.push(&buf[..n]) {
                    match handle_line(&line, &mut out, shared, tx, n1, n2, &mut hists) {
                        Flow::Continue => {}
                        Flow::Close => {
                            out.flush().ok();
                            break 'conn;
                        }
                        Flow::Shutdown => {
                            out.flush().ok();
                            shared.shutdown_verb.store(true, Ordering::Relaxed);
                            break 'conn;
                        }
                    }
                }
                if out.flush().is_err() {
                    // Client went away mid-response (abrupt disconnect).
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    break;
                }
            }
            // Connection reset / broken pipe: tolerated, never fatal to
            // the daemon.
            Err(_) => break,
        }
        if shared.stopping() {
            break;
        }
    }
}

fn handle_line(
    line: &str,
    out: &mut impl Write,
    shared: &Shared,
    tx: &SyncSender<WriterMsg>,
    n1: usize,
    n2: usize,
    hists: &mut HashMap<&'static str, mcm_obs::Histogram>,
) -> Flow {
    let cmd = match parse_command(line) {
        Ok(Some(cmd)) => cmd,
        Ok(None) => return Flow::Continue,
        Err(e) => {
            writeln!(out, "error {e}").ok();
            return Flow::Continue;
        }
    };
    let sw = mcm_obs::Stopwatch::new();
    let verb = verb_of(&cmd);
    let flow = match cmd {
        Command::Insert(r, c, _) | Command::Delete(r, c) => {
            if r as usize >= n1 || c as usize >= n2 {
                writeln!(out, "error vertex out of range ({r}, {c})").ok();
                return finish_request(out, hists, verb, sw, Flow::Continue);
            }
            let u = match cmd {
                Command::Insert(_, _, Some(w)) if !shared.weighted && w != 1.0 => {
                    writeln!(out, "error weighted insert needs a --weighted daemon").ok();
                    return finish_request(out, hists, verb, sw, Flow::Continue);
                }
                Command::Insert(_, _, w) => WUpdate::Insert(r, c, w.unwrap_or(1.0)),
                _ => WUpdate::Delete(r, c),
            };
            // Count the admission *before* sending: the writer may
            // absorb (and decrement) the instant the send lands.
            let d = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
            match tx.try_send(WriterMsg::Update(u)) {
                Ok(()) => {
                    mcm_obs::gauge_set("mcmd_queue_depth", &[], d as f64);
                    writeln!(out, "ok").ok();
                }
                Err(TrySendError::Full(_)) => {
                    shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    mcm_obs::counter_add("mcmd_busy_total", &[("verb", verb)], 1);
                    writeln!(out, "busy").ok();
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    writeln!(out, "error daemon shutting down").ok();
                }
            }
            Flow::Continue
        }
        Command::Query => {
            let p = shared.published();
            match p.snap.weight() {
                Some(w) => writeln!(out, "matching {} weight {}", p.snap.cardinality(), w).ok(),
                None => writeln!(out, "matching {}", p.snap.cardinality()).ok(),
            };
            Flow::Continue
        }
        Command::State => {
            let p = shared.published();
            match p.snap.weight() {
                Some(w) => writeln!(
                    out,
                    "state seq {} epoch {} cardinality {} nnz {} weight {}",
                    p.seq,
                    p.snap.epoch(),
                    p.snap.cardinality(),
                    p.snap.nnz(),
                    w
                )
                .ok(),
                None => writeln!(
                    out,
                    "state seq {} epoch {} cardinality {} nnz {}",
                    p.seq,
                    p.snap.epoch(),
                    p.snap.cardinality(),
                    p.snap.nnz()
                )
                .ok(),
            };
            Flow::Continue
        }
        Command::Sync => {
            let (ack_tx, ack_rx) = mpsc::channel();
            match tx.try_send(WriterMsg::Sync(ack_tx)) {
                Ok(()) => match ack_rx.recv() {
                    Ok(a) => {
                        writeln!(out, "synced seq {} cardinality {}", a.seq, a.cardinality).ok();
                    }
                    Err(_) => {
                        writeln!(out, "error daemon shutting down").ok();
                    }
                },
                Err(TrySendError::Full(_)) => {
                    mcm_obs::counter_add("mcmd_busy_total", &[("verb", verb)], 1);
                    writeln!(out, "busy").ok();
                }
                Err(TrySendError::Disconnected(_)) => {
                    writeln!(out, "error daemon shutting down").ok();
                }
            }
            Flow::Continue
        }
        Command::Stats => {
            let p = shared.published();
            let line = match &p.snap {
                Snap::Card(s) => {
                    format_stats_line(&s.stats, s.cardinality, s.nnz(), s.epoch(), shared.algo_name)
                }
                Snap::Weighted(s) => {
                    format_wstats_line(&s.stats, s.cardinality, s.weight, s.nnz(), s.epoch())
                }
            };
            writeln!(out, "{line}").ok();
            Flow::Continue
        }
        Command::Metrics => {
            out.write_all(mcm_obs::prom::expose(mcm_obs::registry()).as_bytes()).ok();
            writeln!(out, "# EOF").ok();
            Flow::Continue
        }
        Command::Snapshot(path) => {
            let p = shared.published();
            let written = match &p.snap {
                Snap::Card(s) => write_matrix_market_file(&s.graph.to_triples(), &path),
                Snap::Weighted(s) => write_matrix_market_weighted_file(
                    s.graph.nrows(),
                    s.graph.ncols(),
                    &s.graph.to_weighted_triples(),
                    &path,
                ),
            };
            match written {
                Ok(()) => {
                    writeln!(out, "snapshot {} nnz {}", path, p.snap.nnz()).ok();
                }
                Err(e) => {
                    writeln!(out, "error {path}: {e}").ok();
                }
            }
            Flow::Continue
        }
        Command::Quit => {
            writeln!(out, "bye").ok();
            Flow::Close
        }
        Command::Shutdown => {
            writeln!(out, "bye").ok();
            Flow::Shutdown
        }
    };
    finish_request(out, hists, verb, sw, flow)
}

fn finish_request(
    _out: &mut impl Write,
    hists: &mut HashMap<&'static str, mcm_obs::Histogram>,
    verb: &'static str,
    sw: mcm_obs::Stopwatch,
    flow: Flow,
) -> Flow {
    hists
        .entry(verb)
        .or_insert_with(|| mcm_obs::registry().histogram("mcmd_request_seconds", &[("verb", verb)]))
        .observe_ns(sw.elapsed_ns());
    flow
}
