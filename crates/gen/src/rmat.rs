//! The Recursive MATrix (RMAT) generator.
//!
//! §V-B of the paper: *"we used RMAT, the Recursive MATrix generator to
//! generate three different classes of synthetic matrices: (a) G500 ...
//! (b) SSCA ... and (c) ER ... We use the following RMAT seed parameters:
//! (a) a=.57, b=c=.19, and d=.05 for G500, (b) a=.6, b=c=d=.4/3 for SSCA,
//! and (c) a=b=c=d=.25 for ER. A scale n synthetic matrix is 2^n-by-2^n.
//! On average, G500 and ER matrices have 32 nonzeros, and SSCA matrices
//! have 16 nonzeros per row and column."*

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// RMAT quadrant probabilities plus size parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
    /// The matrix is `2^scale × 2^scale`.
    pub scale: u32,
    /// Edges generated = `edge_factor · 2^scale` (before deduplication).
    pub edge_factor: usize,
}

impl RmatParams {
    /// Graph 500 parameters: skewed degree distribution, 32 edges/vertex.
    pub fn g500(scale: u32) -> Self {
        rmat_profile("g500").unwrap().params(scale)
    }

    /// HPCS SSCA#2 parameters: mildly skewed, 16 edges/vertex.
    pub fn ssca(scale: u32) -> Self {
        rmat_profile("ssca").unwrap().params(scale)
    }

    /// Erdős–Rényi via uniform quadrants: flat degree distribution,
    /// 32 edges/vertex.
    pub fn er(scale: u32) -> Self {
        rmat_profile("er").unwrap().params(scale)
    }

    /// Matrix dimension `2^scale`.
    pub fn n(&self) -> usize {
        1usize << self.scale
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "RMAT quadrant probabilities must sum to 1, got {sum}");
        assert!(self.scale >= 1 && self.scale < 31, "scale must be in 1..31");
    }
}

/// A named RMAT parameter profile: quadrant probabilities plus edge factor,
/// without a scale. One table serves every consumer — the in-RAM Table II
/// stand-ins (`realistic.rs`), the streaming MCSB writer behind
/// `mcm gen --format mcsb`, and anything else that wants "the wikipedia
/// shape at scale N" — so the numbers exist in exactly one place.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatProfile {
    /// Profile name (the UF matrix the shape imitates, or a family name).
    pub name: &'static str,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Edges sampled per vertex.
    pub edge_factor: usize,
}

impl RmatProfile {
    /// Instantiates the profile at a concrete scale.
    pub fn params(&self, scale: u32) -> RmatParams {
        RmatParams {
            a: self.a,
            b: self.b,
            c: self.c,
            d: self.d,
            scale,
            edge_factor: self.edge_factor,
        }
    }
}

/// The named profiles: the three paper families (§V-B) plus the four
/// power-law Table II stand-ins that are RMAT-shaped.
pub const RMAT_PROFILES: &[RmatProfile] = &[
    RmatProfile { name: "g500", a: 0.57, b: 0.19, c: 0.19, d: 0.05, edge_factor: 32 },
    RmatProfile { name: "ssca", a: 0.6, b: 0.4 / 3.0, c: 0.4 / 3.0, d: 0.4 / 3.0, edge_factor: 16 },
    RmatProfile { name: "er", a: 0.25, b: 0.25, c: 0.25, d: 0.25, edge_factor: 32 },
    RmatProfile { name: "cit-Patents", a: 0.45, b: 0.22, c: 0.22, d: 0.11, edge_factor: 6 },
    RmatProfile { name: "ljournal-2008", a: 0.52, b: 0.2, c: 0.2, d: 0.08, edge_factor: 14 },
    RmatProfile { name: "wb-edu", a: 0.57, b: 0.19, c: 0.19, d: 0.05, edge_factor: 10 },
    RmatProfile { name: "wikipedia-20070206", a: 0.55, b: 0.2, c: 0.2, d: 0.05, edge_factor: 12 },
];

/// Looks up a named profile from [`RMAT_PROFILES`].
pub fn rmat_profile(name: &str) -> Option<&'static RmatProfile> {
    RMAT_PROFILES.iter().find(|p| p.name == name)
}

/// Samples one edge by recursive quadrant descent.
#[inline]
fn sample_edge(p: &RmatParams, rng: &mut SplitMix64) -> (Vidx, Vidx) {
    let (mut i, mut j) = (0u32, 0u32);
    // Per-level parameter noise (±10%) as in the Graph500 reference
    // implementation, which prevents exact self-similarity artifacts.
    for _ in 0..p.scale {
        i <<= 1;
        j <<= 1;
        let noise = 0.9 + 0.2 * rng.next_f64();
        let (a, b, c) = (p.a * noise, p.b, p.c);
        let total = a + b + c + p.d * (2.0 - noise);
        let r = rng.next_f64() * total;
        if r < a {
            // top-left: nothing to add
        } else if r < a + b {
            j |= 1;
        } else if r < a + b + c {
            i |= 1;
        } else {
            i |= 1;
            j |= 1;
        }
    }
    (i, j)
}

/// Generates an RMAT matrix: `edge_factor · 2^scale` samples, deduplicated.
///
/// Sampling is embarrassingly parallel (`mcm-par`) with per-chunk SplitMix64
/// streams derived from `seed`, so the result is deterministic regardless of
/// thread count.
///
/// # Example
///
/// ```
/// use mcm_gen::rmat::{rmat, RmatParams};
///
/// let g = rmat(RmatParams::g500(8), 42); // 256 x 256, skewed degrees
/// assert_eq!(g.nrows(), 256);
/// assert_eq!(g, rmat(RmatParams::g500(8), 42)); // deterministic in the seed
/// ```
pub fn rmat(p: RmatParams, seed: u64) -> Triples {
    p.validate();
    let n = p.n();
    let mut edges: Vec<(Vidx, Vidx)> = Vec::with_capacity(p.edge_factor * n);
    stream_edges(&p, seed, |chunk| edges.extend_from_slice(chunk));
    let mut t = Triples::from_edges(n, n, edges);
    t.sort_dedup();
    t
}

/// Sampling chunk size shared by [`rmat`] and [`stream_edges`]. The
/// per-chunk SplitMix64 seed is a pure function of (`seed`, chunk index),
/// so the two entry points produce the identical edge stream.
const CHUNK: usize = 1 << 16;

/// Streams the RMAT edge list to `sink` in chunks without materializing it.
///
/// The edges delivered (values and order) are exactly those [`rmat`]
/// deduplicates into a [`Triples`], so an out-of-core consumer (the MCSB
/// stream writer behind `mcm gen --format mcsb`) sees the same graph as the
/// in-RAM generator. Chunks are *sampled* in parallel (`mcm-par`) a batch at
/// a time, so peak memory is `O(threads · CHUNK)` edges regardless of scale.
pub fn stream_edges(p: &RmatParams, seed: u64, mut sink: impl FnMut(&[(Vidx, Vidx)])) {
    p.validate();
    let m = p.edge_factor * p.n();
    let chunks = m.div_ceil(CHUNK);
    let threads = mcm_par::max_threads();
    let batch = threads.max(1) * 4;
    let mut next = 0usize;
    while next < chunks {
        let take = batch.min(chunks - next);
        let base = next;
        let sampled: Vec<Vec<(Vidx, Vidx)>> = mcm_par::par_map_range(take, threads, |k| {
            let chunk = base + k;
            let mut rng = SplitMix64::new(
                seed ^ (0x9E37_79B9 + chunk as u64).wrapping_mul(0xABCD_EF12_3456_789B),
            );
            let count = CHUNK.min(m - chunk * CHUNK);
            (0..count).map(|_| sample_edge(p, &mut rng)).collect::<Vec<_>>()
        });
        for chunk in &sampled {
            sink(chunk);
        }
        next += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::{DegreeHistogram, MatrixStats};

    #[test]
    fn dimensions_and_density() {
        let t = rmat(RmatParams::er(10), 1);
        assert_eq!(t.nrows(), 1024);
        assert_eq!(t.ncols(), 1024);
        // 32 * 1024 samples minus duplicates: still well above 20/row.
        let s = MatrixStats::from_triples(&t);
        assert!(s.avg_row_degree > 20.0, "avg degree {}", s.avg_row_degree);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = rmat(RmatParams::g500(8), 42);
        let b = rmat(RmatParams::g500(8), 42);
        assert_eq!(a, b);
        let c = rmat(RmatParams::g500(8), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn g500_is_more_skewed_than_er() {
        let g = rmat(RmatParams::g500(11), 7);
        let e = rmat(RmatParams::er(11), 7);
        let gs = DegreeHistogram::skew(&g.to_csc().row_degrees());
        let es = DegreeHistogram::skew(&e.to_csc().row_degrees());
        assert!(gs > 2.0 * es, "expected G500 skew ({gs:.1}) well above ER skew ({es:.1})");
    }

    #[test]
    fn ssca_has_half_the_edges() {
        let s = rmat(RmatParams::ssca(10), 3);
        let e = rmat(RmatParams::er(10), 3);
        let ss = MatrixStats::from_triples(&s);
        let es = MatrixStats::from_triples(&e);
        assert!(ss.avg_row_degree < 0.7 * es.avg_row_degree);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        let p = RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5, scale: 4, edge_factor: 4 };
        let _ = rmat(p, 0);
    }

    #[test]
    fn stream_edges_matches_in_ram_generator() {
        // Multiple batches (scale 12 × ef 32 = 131072 samples = 2 chunks at
        // least) and a partial tail chunk must reproduce rmat() exactly.
        for p in [RmatParams::g500(12), RmatParams::ssca(9)] {
            let mut streamed: Vec<(Vidx, Vidx)> = Vec::new();
            stream_edges(&p, 42, |chunk| streamed.extend_from_slice(chunk));
            assert_eq!(streamed.len(), p.edge_factor * p.n());
            let mut t = Triples::from_edges(p.n(), p.n(), streamed);
            t.sort_dedup();
            assert_eq!(t, rmat(p, 42));
        }
    }

    #[test]
    fn g500_has_isolated_vertices() {
        // The skewed distribution leaves some rows empty — these make the
        // maximum matching deficient, which is what gives the MCM algorithm
        // real work to do (§V-B selection criterion).
        let t = rmat(RmatParams::g500(12), 5);
        let s = MatrixStats::from_triples(&t);
        assert!(s.empty_rows > 0);
    }
}
