//! Direct Erdős–Rényi bipartite samplers.
//!
//! Complements the RMAT-based `ER` preset with exact-shape `G(n1, n2, m)`
//! sampling for rectangular matrices (e.g. the `GL7d18` stand-in, which in
//! the UF collection is a rectangular combinatorial matrix) and for
//! unit tests needing precise control of density.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// Samples `m` edges uniformly (with replacement, then deduplicated) from
/// the complete bipartite graph `K_{n1,n2}`.
pub fn gnm_bipartite(n1: usize, n2: usize, m: usize, seed: u64) -> Triples {
    assert!(n1 > 0 && n2 > 0);
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n1, n2, m);
    for _ in 0..m {
        let i = rng.below(n1 as u64) as Vidx;
        let j = rng.below(n2 as u64) as Vidx;
        t.push(i, j);
    }
    t.sort_dedup();
    t
}

/// Samples a bipartite graph where every *column* vertex draws its degree
/// uniformly from `deg_lo..=deg_hi` and picks that many distinct random row
/// neighbours. Produces matrices with uniform column degrees but binomial
/// row degrees — the shape of several combinatorial UF matrices.
pub fn uniform_coldeg(n1: usize, n2: usize, deg_lo: usize, deg_hi: usize, seed: u64) -> Triples {
    assert!(deg_lo <= deg_hi && deg_hi <= n1);
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n1, n2, n2 * (deg_lo + deg_hi) / 2);
    let mut picked: Vec<Vidx> = Vec::with_capacity(deg_hi);
    for j in 0..n2 {
        let deg = deg_lo + rng.below((deg_hi - deg_lo + 1) as u64) as usize;
        picked.clear();
        while picked.len() < deg {
            let i = rng.below(n1 as u64) as Vidx;
            if !picked.contains(&i) {
                picked.push(i);
                t.push(i, j as Vidx);
            }
        }
    }
    t.sort_dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::MatrixStats;

    #[test]
    fn gnm_respects_bounds() {
        let t = gnm_bipartite(100, 50, 500, 9);
        assert_eq!(t.nrows(), 100);
        assert_eq!(t.ncols(), 50);
        assert!(t.len() <= 500);
        assert!(t.len() > 400); // few duplicates at this density
    }

    #[test]
    fn gnm_is_deterministic() {
        assert_eq!(gnm_bipartite(64, 64, 256, 5), gnm_bipartite(64, 64, 256, 5));
    }

    #[test]
    fn uniform_coldeg_hits_the_range() {
        let t = uniform_coldeg(200, 100, 3, 7, 11);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.empty_cols, 0);
        assert!(s.avg_col_degree >= 3.0 && s.avg_col_degree <= 7.0);
        let csc = t.to_csc();
        for j in 0..100 {
            let d = csc.col_nnz(j);
            assert!((3..=7).contains(&d), "col {j} degree {d}");
        }
    }
}
