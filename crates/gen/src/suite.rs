//! The simtest input suite: a curated, seed-parameterized batch of small
//! instances spanning every structure class the generators produce.
//!
//! The schedule-perturbation sweeps (`tests/simtest_*.rs`, DESIGN.md §10)
//! need inputs that are (a) small enough to run hundreds of perturbed
//! configurations per CI job, and (b) diverse enough to exercise every
//! regime of MCM-DIST: long single augmenting paths (path-parallel RMA
//! chains), many disjoint paths (adversarial interleavings), skewed
//! degrees (load imbalance in the collectives), and rectangular shapes
//! (deficient matchings). One function owns that list so every harness
//! sweeps the same inputs.

use crate::banded::banded;
use crate::er::gnm_bipartite;
use crate::hard::{chain, crown, parallel_chains, staircase};
use crate::mesh::road_grid;
use crate::rmat::{rmat, RmatParams};
use crate::trace::TraceParams;
use mcm_sparse::Triples;

/// The standard simtest input batch, deterministic in `seed`. Names are
/// stable identifiers for failure reports.
pub fn simtest_suite(seed: u64) -> Vec<(String, Triples)> {
    vec![
        // Random structure: flat and skewed degree distributions, plus a
        // rectangular deficient instance.
        ("er_gnm_24x30".into(), gnm_bipartite(24, 30, 70, seed)),
        ("er_gnm_sparse_20x20".into(), gnm_bipartite(20, 20, 26, seed.wrapping_add(1))),
        ("rmat_g500_s5".into(), rmat(RmatParams::g500(5), seed)),
        // Structured stand-ins: banded diffusion and a road-like mesh.
        ("banded_28".into(), banded(28, 3, 2, seed)),
        ("road_grid_6x5".into(), road_grid(6, 5, 0.15, seed)),
        // Adversarial matching instances: one maximal-length augmenting
        // chain, many simultaneous disjoint chains (the path-parallel RMA
        // stress case), staircase phase-count blowup, and the crown's
        // initializer trap.
        ("chain_9".into(), chain(9)),
        ("parallel_chains_3x4".into(), parallel_chains(3, 4)),
        ("staircase_6".into(), staircase(6)),
        ("crown_8".into(), crown(8)),
    ]
}

/// The curated update-trace batch for the dynamic-engine sweeps
/// (`tests/dyn_oracle.rs`, `benches/dynamic.rs`), deterministic in `seed`.
/// Names are stable identifiers for failure reports. The mix spans the
/// repair regimes: balanced churn (small dirty sets, single-path repair),
/// insert-heavy growth (interior inserts that need global sweeps),
/// delete-heavy decay with maximal matched-edge bias (freed endpoints on
/// both sides), and a rectangular deficient instance.
pub fn update_trace_suite(seed: u64) -> Vec<(String, TraceParams)> {
    vec![
        ("churn_16x16".into(), TraceParams::churn(16, 16, seed)),
        (
            "grow_24x20".into(),
            TraceParams {
                warmup_edges: 30,
                batches: 8,
                ops_per_batch: 12,
                insert_frac: 0.85,
                matched_bias: 0.3,
                ..TraceParams::churn(24, 20, seed.wrapping_add(1))
            },
        ),
        (
            "decay_20x24".into(),
            TraceParams {
                warmup_edges: 110,
                batches: 8,
                ops_per_batch: 10,
                insert_frac: 0.25,
                matched_bias: 1.0,
                ..TraceParams::churn(20, 24, seed.wrapping_add(2))
            },
        ),
        (
            "wide_12x36".into(),
            TraceParams {
                warmup_edges: 60,
                batches: 6,
                ops_per_batch: 14,
                insert_frac: 0.55,
                matched_bias: 0.6,
                ..TraceParams::churn(12, 36, seed.wrapping_add(3))
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::update_trace;

    #[test]
    fn suite_is_deterministic_in_seed() {
        let a = simtest_suite(7);
        let b = simtest_suite(7);
        assert_eq!(a.len(), b.len());
        for ((na, ta), (nb, tb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ta, tb, "{na} not deterministic");
        }
        let c = simtest_suite(8);
        assert!(
            a.iter().zip(&c).any(|((_, ta), (_, tc))| ta != tc),
            "seed must actually vary the random instances"
        );
    }

    #[test]
    fn suite_names_are_unique_and_instances_nonempty() {
        let suite = simtest_suite(1);
        let mut names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        for (name, t) in &suite {
            assert!(!t.is_empty(), "{name} is empty");
            assert!(t.nrows() <= 64 && t.ncols() <= 64, "{name} too large for a sweep input");
        }
    }

    #[test]
    fn trace_suite_is_deterministic_and_sweep_sized() {
        let a = update_trace_suite(5);
        let b = update_trace_suite(5);
        assert_eq!(a.len(), b.len());
        let mut names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "trace names must be unique");
        for ((na, pa), (_, pb)) in a.iter().zip(&b) {
            let (ta, tb) = (update_trace(pa), update_trace(pb));
            assert_eq!(ta, tb, "{na} not deterministic");
            assert!(pa.n1 <= 64 && pa.n2 <= 64, "{na} too large for a sweep input");
            assert!(pa.batches >= 4, "{na} must exercise several repair batches");
        }
        let c = update_trace_suite(6);
        assert!(
            a.iter().zip(&c).any(|((_, pa), (_, pc))| update_trace(pa) != update_trace(pc)),
            "seed must actually vary the traces"
        );
    }
}
