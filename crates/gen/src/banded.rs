//! Banded matrices (the `cage` family stand-in).
//!
//! The `cageN` matrices model DNA electrophoresis: square, nearly structurally
//! symmetric, with nonzeros concentrated in a handful of diagonals plus
//! local jitter. Degree is uniform and moderate; diameters are small-ish but
//! not power-law-small.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// A square `n × n` matrix with nonzeros on the main diagonal, on `bands`
/// symmetric off-diagonals at exponentially growing distances (1, 2, 4, …),
/// and `jitter_per_row` extra entries uniform within `±max_band` of the
/// diagonal.
pub fn banded(n: usize, bands: usize, jitter_per_row: usize, seed: u64) -> Triples {
    assert!(n > 1 && bands >= 1);
    let mut rng = SplitMix64::new(seed);
    let max_band = 1usize << (bands - 1);
    let mut t = Triples::with_capacity(n, n, n * (2 * bands + jitter_per_row + 1));
    for i in 0..n {
        t.push(i as Vidx, i as Vidx);
        for b in 0..bands {
            let d = 1usize << b;
            if i + d < n {
                t.push(i as Vidx, (i + d) as Vidx);
                t.push((i + d) as Vidx, i as Vidx);
            }
        }
        for _ in 0..jitter_per_row {
            let offset = rng.below((2 * max_band + 1) as u64) as i64 - max_band as i64;
            let j = i as i64 + offset;
            if (0..n as i64).contains(&j) {
                t.push(i as Vidx, j as Vidx);
            }
        }
    }
    t.sort_dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::MatrixStats;

    #[test]
    fn full_diagonal_present() {
        let t = banded(100, 3, 2, 1);
        let c = t.to_csc();
        for i in 0..100u32 {
            assert!(c.contains(i, i as usize), "missing diagonal at {i}");
        }
    }

    #[test]
    fn bandwidth_is_bounded() {
        let t = banded(200, 3, 2, 2);
        let max_band = 4i64;
        for &(i, j) in t.entries() {
            assert!((i as i64 - j as i64).abs() <= max_band, "entry ({i},{j}) outside band");
        }
    }

    #[test]
    fn moderate_uniform_degrees() {
        let s = MatrixStats::from_triples(&banded(500, 4, 3, 3));
        assert!(s.avg_row_degree > 5.0 && s.avg_row_degree < 15.0);
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(banded(64, 3, 2, 9), banded(64, 3, 2, 9));
    }
}
