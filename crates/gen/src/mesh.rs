//! Planar mesh and road-network generators.
//!
//! High-diameter, low-degree graphs: the regime where MS-BFS runs many
//! level-synchronous iterations and latency terms dominate at scale (the
//! paper's `road_usa` and `delaunay_n24` behave this way; `hugetrace` /
//! `hugebubbles` are refined 2D meshes of the same family). All generators
//! return *square symmetric* patterns — these matrices come from undirected
//! graphs, and the bipartite matching runs on the rows-vs-columns bipartite
//! view of the matrix, exactly as sparse solvers use it.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// Pushes the symmetric pair for an undirected edge.
#[inline]
fn undirected(t: &mut Triples, u: Vidx, v: Vidx) {
    t.push(u, v);
    t.push(v, u);
}

/// A `w × h` grid graph (4-neighbour lattice) with a fraction
/// `drop_fraction` of lattice edges deterministically removed — a stand-in
/// for road networks: degree ≈ 2–4, huge diameter, slightly irregular.
pub fn road_grid(w: usize, h: usize, drop_fraction: f64, seed: u64) -> Triples {
    assert!((0.0..1.0).contains(&drop_fraction));
    let n = w * h;
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n, n, 4 * n);
    let id = |x: usize, y: usize| (y * w + x) as Vidx;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w && rng.next_f64() >= drop_fraction {
                undirected(&mut t, id(x, y), id(x + 1, y));
            }
            if y + 1 < h && rng.next_f64() >= drop_fraction {
                undirected(&mut t, id(x, y), id(x, y + 1));
            }
        }
    }
    t.sort_dedup();
    t
}

/// A triangulated `w × h` grid: the lattice plus one diagonal per cell
/// (alternating orientation, plus random flips) — average degree ≈ 6 like a
/// Delaunay triangulation, planar, moderate diameter.
pub fn triangulated_grid(w: usize, h: usize, seed: u64) -> Triples {
    let n = w * h;
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n, n, 6 * n);
    let id = |x: usize, y: usize| (y * w + x) as Vidx;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                undirected(&mut t, id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                undirected(&mut t, id(x, y), id(x, y + 1));
            }
            if x + 1 < w && y + 1 < h {
                // one diagonal per cell; orientation pseudo-random
                if rng.next_u64() & 1 == 0 {
                    undirected(&mut t, id(x, y), id(x + 1, y + 1));
                } else {
                    undirected(&mut t, id(x + 1, y), id(x, y + 1));
                }
            }
        }
    }
    t.sort_dedup();
    t
}

/// A "bubbles" mesh: a triangulated grid with circular holes punched out
/// (vertices inside the holes are kept but isolated), mimicking the
/// `hugebubbles` family of adaptively refined 2D frames. The holes create
/// structurally unmatchable vertices, giving the MCM phase real work.
pub fn bubble_mesh(w: usize, h: usize, n_bubbles: usize, seed: u64) -> Triples {
    let base = triangulated_grid(w, h, seed);
    let mut rng = SplitMix64::new(seed ^ 0xB0B5);
    // Pick bubble centers and radii.
    let mut bubbles = Vec::with_capacity(n_bubbles);
    let max_r = (w.min(h) / 8).max(2);
    for _ in 0..n_bubbles {
        let cx = rng.below(w as u64) as i64;
        let cy = rng.below(h as u64) as i64;
        let r = 2 + rng.below(max_r as u64 - 1) as i64;
        bubbles.push((cx, cy, r * r));
    }
    let inside = |v: Vidx| {
        let (x, y) = ((v as usize % w) as i64, (v as usize / w) as i64);
        bubbles.iter().any(|&(cx, cy, r2)| (x - cx) * (x - cx) + (y - cy) * (y - cy) <= r2)
    };
    let kept: Vec<(Vidx, Vidx)> =
        base.entries().iter().copied().filter(|&(u, v)| !inside(u) && !inside(v)).collect();
    Triples::from_edges(base.nrows(), base.ncols(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::MatrixStats;

    #[test]
    fn road_grid_degrees_are_small() {
        let t = road_grid(32, 32, 0.1, 1);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.nrows, 1024);
        assert!(s.max_row_degree <= 4);
        assert!(s.avg_row_degree > 2.0 && s.avg_row_degree < 4.0);
    }

    #[test]
    fn road_grid_is_symmetric() {
        let t = road_grid(16, 16, 0.2, 3);
        let c = t.to_csc();
        for (i, j) in c.iter() {
            assert!(c.contains(j, i as usize), "asymmetric edge ({i},{j})");
        }
    }

    #[test]
    fn triangulated_grid_degree_near_six() {
        let t = triangulated_grid(40, 40, 2);
        let s = MatrixStats::from_triples(&t);
        assert!(s.avg_row_degree > 4.5 && s.avg_row_degree < 6.5, "{}", s.avg_row_degree);
        assert!(s.max_row_degree <= 8);
    }

    #[test]
    fn bubbles_punch_holes() {
        let full = triangulated_grid(64, 64, 4);
        let holey = bubble_mesh(64, 64, 6, 4);
        let fs = MatrixStats::from_triples(&full);
        let hs = MatrixStats::from_triples(&holey);
        assert!(hs.nnz < fs.nnz);
        assert!(hs.empty_rows > 0, "bubbles should isolate some vertices");
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_grid(10, 10, 0.1, 7), road_grid(10, 10, 0.1, 7));
        assert_eq!(bubble_mesh(20, 20, 3, 7), bubble_mesh(20, 20, 3, 7));
    }
}
