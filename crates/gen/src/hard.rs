//! Adversarial matching instances.
//!
//! Structured worst cases used by the stress tests and the augmentation
//! benches: they maximize augmenting-path length, phase count, or
//! initializer failure — the regimes where the algorithms' asymptotic
//! differences actually show.

use mcm_sparse::{Triples, Vidx};

/// A single alternating chain of `k` columns and `k` rows:
/// `c0 — r0 — c1 — r1 — … — r_{k-1}`, where edge `(r_i, c_i)` and
/// `(r_i, c_{i+1})` exist. Greedy matching from column order takes
/// `(r_i, c_i)` everywhere and the final augmentation must ripple the whole
/// chain — the longest possible augmenting path for the size.
pub fn chain(k: usize) -> Triples {
    assert!(k >= 1);
    let mut t = Triples::with_capacity(k, k, 2 * k);
    for i in 0..k as Vidx {
        t.push(i, i);
        if (i as usize) + 1 < k {
            t.push(i, i + 1);
        }
    }
    t
}

/// `b` disjoint chains of length `k` each: many simultaneously long
/// vertex-disjoint augmenting paths — the stress case for the
/// level-parallel vs path-parallel augmentation trade-off.
pub fn parallel_chains(b: usize, k: usize) -> Triples {
    assert!(b >= 1 && k >= 1);
    let n = b * k;
    let mut t = Triples::with_capacity(n, n, 2 * n);
    for q in 0..b {
        let base = (q * k) as Vidx;
        for i in 0..k as Vidx {
            t.push(base + i, base + i);
            if (i as usize) + 1 < k {
                t.push(base + i, base + i + 1);
            }
        }
    }
    t
}

/// The "staircase" that defeats greedy order maximally: column `j` is
/// adjacent to rows `j` and `j-1` (a path graph), plus a pendant making the
/// greedy choice wrong at every step. Maximum matching is perfect; greedy
/// by column order achieves roughly half.
pub fn staircase(k: usize) -> Triples {
    assert!(k >= 2);
    // Path: r0 - c0, r0 - c1, r1 - c1, r1 - c2, ... zig-zag; perfect
    // matching pairs (r_i, c_i); greedy grabbing the first unmatched row
    // strands every other column.
    let mut t = Triples::with_capacity(k, k, 2 * k);
    for i in 0..k as Vidx {
        t.push(i, i);
        if i >= 1 {
            t.push(i - 1, i);
        }
    }
    t
}

/// A bipartite "crown": `n` columns, `n` rows, column `j` adjacent to every
/// row *except* `j`. For `n ≥ 2` a perfect matching exists (shift by one),
/// but the graph is dense and every vertex has the same degree — a fairness
/// stress for randomized semirings and a dense-frontier case for bottom-up
/// exploration.
pub fn crown(n: usize) -> Triples {
    assert!(n >= 2);
    let mut t = Triples::with_capacity(n, n, n * (n - 1));
    for i in 0..n as Vidx {
        for j in 0..n as Vidx {
            if i != j {
                t.push(i, j);
            }
        }
    }
    t
}

/// A multi-hub star `K_{hubs, leaves}`: every leaf column is adjacent to
/// every hub row, all with the same (unit) value. The auction engine's
/// price-war worst case: every alternative is equally good, so fixed-ε
/// bidding raises one price by one ε per round — Θ(hubs/ε) rounds — while
/// ε-scaling resolves the war in coarse increments. `hubs = 1` is the
/// classic single-object star. Also a maximal degree-skew instance for
/// the portfolio selector when `leaves ≫ hubs`.
pub fn star(hubs: usize, leaves: usize) -> Triples {
    assert!(hubs >= 1 && leaves >= 1);
    let mut t = Triples::with_capacity(hubs, leaves, hubs * leaves);
    for r in 0..hubs as Vidx {
        for c in 0..leaves as Vidx {
            t.push(r, c);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::MatrixStats;

    #[test]
    fn chain_shape() {
        let t = chain(5);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.nnz, 9);
        assert_eq!(s.max_row_degree, 2);
    }

    #[test]
    fn parallel_chains_are_disjoint() {
        let t = parallel_chains(3, 4);
        assert_eq!(t.nrows(), 12);
        // No edge crosses a chain boundary.
        for &(r, c) in t.entries() {
            assert_eq!(r as usize / 4, c as usize / 4);
        }
    }

    #[test]
    fn staircase_is_a_path() {
        let t = staircase(6);
        let s = MatrixStats::from_triples(&t);
        assert!(s.max_row_degree <= 2);
        assert!(s.max_col_degree <= 2);
        assert_eq!(s.empty_rows, 0);
        assert_eq!(s.empty_cols, 0);
    }

    #[test]
    fn star_shape() {
        let t = star(4, 32);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.nnz, 128);
        assert_eq!(s.max_row_degree, 32);
        assert_eq!(s.max_col_degree, 4);
        assert_eq!(s.empty_cols, 0);
    }

    #[test]
    fn crown_degrees() {
        let t = crown(5);
        let s = MatrixStats::from_triples(&t);
        assert_eq!(s.nnz, 20);
        assert_eq!(s.max_row_degree, 4);
        assert_eq!(s.avg_col_degree, 4.0);
    }
}
