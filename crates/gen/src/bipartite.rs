//! Bipartite graph surgery utilities.
//!
//! Small structural transformations used by tests, benches, and downstream
//! users preparing inputs: padding to square, disjoint unions for building
//! multi-component instances, and guaranteed-matchable augmentation.

use mcm_sparse::{Triples, Vidx};

/// Pads a rectangular matrix to square by appending empty rows or columns
/// (structural rank is unchanged; the extra vertices are isolated).
pub fn pad_to_square(t: &Triples) -> Triples {
    let n = t.nrows().max(t.ncols());
    Triples::from_edges(n, n, t.entries().to_vec())
}

/// The disjoint union: `b`'s vertices are shifted past `a`'s, producing a
/// block-diagonal pattern with no edges between the parts.
pub fn disjoint_union(a: &Triples, b: &Triples) -> Triples {
    let (ro, co) = (a.nrows() as Vidx, a.ncols() as Vidx);
    let mut edges = a.entries().to_vec();
    edges.extend(b.entries().iter().map(|&(i, j)| (i + ro, j + co)));
    Triples::from_edges(a.nrows() + b.nrows(), a.ncols() + b.ncols(), edges)
}

/// Adds the identity diagonal to a square matrix, guaranteeing a perfect
/// matching (structural nonsingularity) without disturbing the rest of the
/// pattern.
pub fn with_full_diagonal(t: &Triples) -> Triples {
    assert_eq!(t.nrows(), t.ncols(), "diagonal padding requires a square matrix");
    let mut out = t.clone();
    for i in 0..t.nrows() as Vidx {
        out.push(i, i);
    }
    out.sort_dedup();
    out
}

/// Drops all isolated (empty) rows and columns, compacting the indices;
/// returns the compacted graph plus the old→new maps (`None` = dropped).
pub fn drop_isolated(t: &Triples) -> (Triples, Vec<Option<Vidx>>, Vec<Option<Vidx>>) {
    let c = t.to_csc();
    let rd = c.row_degrees();
    let cd = c.col_degrees();
    let mut row_map = vec![None; t.nrows()];
    let mut col_map = vec![None; t.ncols()];
    let mut nr = 0 as Vidx;
    for (i, &d) in rd.iter().enumerate() {
        if d > 0 {
            row_map[i] = Some(nr);
            nr += 1;
        }
    }
    let mut nc = 0 as Vidx;
    for (j, &d) in cd.iter().enumerate() {
        if d > 0 {
            col_map[j] = Some(nc);
            nc += 1;
        }
    }
    let edges = t
        .entries()
        .iter()
        .map(|&(i, j)| (row_map[i as usize].unwrap(), col_map[j as usize].unwrap()))
        .collect();
    (Triples::from_edges(nr as usize, nc as usize, edges), row_map, col_map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_makes_square() {
        let t = Triples::from_edges(2, 5, vec![(0, 4)]);
        let s = pad_to_square(&t);
        assert_eq!((s.nrows(), s.ncols()), (5, 5));
        assert_eq!(s.entries(), t.entries());
    }

    #[test]
    fn disjoint_union_shifts_the_second_part() {
        let a = Triples::from_edges(2, 2, vec![(0, 0)]);
        let b = Triples::from_edges(3, 3, vec![(2, 1)]);
        let u = disjoint_union(&a, &b);
        assert_eq!((u.nrows(), u.ncols()), (5, 5));
        let mut e = u.entries().to_vec();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 0), (4, 3)]);
    }

    #[test]
    fn full_diagonal_guarantees_perfect_matching() {
        let t = Triples::from_edges(3, 3, vec![(0, 2)]);
        let d = with_full_diagonal(&t);
        let c = d.to_csc();
        for i in 0..3u32 {
            assert!(c.contains(i, i as usize));
        }
        assert!(c.contains(0, 2));
        assert_eq!(d.len(), 4); // no duplicate if (i, i) already present
    }

    #[test]
    fn drop_isolated_compacts() {
        // Row 1 and column 0 are empty.
        let t = Triples::from_edges(3, 3, vec![(0, 1), (2, 2)]);
        let (s, row_map, col_map) = drop_isolated(&t);
        assert_eq!((s.nrows(), s.ncols()), (2, 2));
        assert_eq!(row_map, vec![Some(0), None, Some(1)]);
        assert_eq!(col_map, vec![None, Some(0), Some(1)]);
        let mut e = s.entries().to_vec();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn union_preserves_matching_number() {
        use mcm_sparse::stats::MatrixStats;
        let a = Triples::from_edges(2, 2, vec![(0, 0), (1, 1)]);
        let u = disjoint_union(&a, &a);
        assert_eq!(MatrixStats::from_triples(&u).nnz, 4);
    }
}
