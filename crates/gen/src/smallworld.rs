//! Small-world graphs (the `amazon-2008` / `ljournal` stand-ins).
//!
//! Co-purchase and social graphs combine strong local clustering (ring
//! lattice neighbourhoods) with a few long-range links — the
//! Watts–Strogatz shape. Their BFS frontiers grow quickly but the degree
//! distribution is much flatter than web graphs'.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// A Watts–Strogatz-style graph: `n` vertices on a ring, each connected to
/// its `k` nearest neighbours on each side, with every edge rewired to a
/// uniformly random endpoint with probability `p_rewire`. Returned as a
/// square symmetric pattern.
pub fn watts_strogatz(n: usize, k: usize, p_rewire: f64, seed: u64) -> Triples {
    assert!(n > 2 * k && k >= 1);
    assert!((0.0..=1.0).contains(&p_rewire));
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n, n, 2 * n * k);
    for u in 0..n {
        for d in 1..=k {
            let v =
                if rng.next_f64() < p_rewire { rng.below(n as u64) as usize } else { (u + d) % n };
            if v != u {
                t.push(u as Vidx, v as Vidx);
                t.push(v as Vidx, u as Vidx);
            }
        }
    }
    t.sort_dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::{DegreeHistogram, MatrixStats};

    #[test]
    fn degrees_center_on_two_k() {
        let t = watts_strogatz(1000, 3, 0.1, 1);
        let s = MatrixStats::from_triples(&t);
        assert!(s.avg_row_degree > 4.5 && s.avg_row_degree < 6.5, "{}", s.avg_row_degree);
    }

    #[test]
    fn flat_degree_distribution() {
        let t = watts_strogatz(2000, 4, 0.1, 2);
        let skew = DegreeHistogram::skew(&t.to_csc().row_degrees());
        assert!(skew < 3.0, "small-world graphs should not be heavy-tailed: {skew}");
    }

    #[test]
    fn symmetric_pattern() {
        let t = watts_strogatz(100, 2, 0.3, 3);
        let c = t.to_csc();
        for (i, j) in c.iter() {
            assert!(c.contains(j, i as usize));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(128, 2, 0.2, 9), watts_strogatz(128, 2, 0.2, 9));
    }
}
