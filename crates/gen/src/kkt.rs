//! KKT-system matrices (the `nlpkkt` / `kkt_power` stand-ins).
//!
//! Interior-point methods for constrained optimization solve saddle-point
//! ("KKT") systems
//!
//! ```text
//!   [ H  Jᵀ ] [x]   [b1]
//!   [ J  0  ] [y] = [b2]
//! ```
//!
//! where `H` is a PDE-like Hessian (here: a 3D 7-point stencil over a
//! `g × g × g` grid) and `J` a sparse constraint Jacobian. These are exactly
//! the matrices the paper's motivating application — matching as a
//! preprocessing step for distributed sparse solvers — cares about: the
//! zero (2,2) block means the diagonal is structurally deficient and a
//! row permutation from a matching is required before factorization.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx};

/// Builds a KKT matrix from a `g³`-node 3D stencil Hessian and
/// `n_constraints` Jacobian rows touching `nnz_per_constraint` Hessian
/// columns each. The result is square of dimension `g³ + n_constraints` and
/// structurally symmetric.
pub fn kkt_stencil(
    g: usize,
    n_constraints: usize,
    nnz_per_constraint: usize,
    seed: u64,
) -> Triples {
    assert!(g >= 2 && nnz_per_constraint >= 1);
    let nh = g * g * g;
    let n = nh + n_constraints;
    let mut rng = SplitMix64::new(seed);
    let mut t = Triples::with_capacity(n, n, 7 * nh + 2 * n_constraints * nnz_per_constraint);
    let id = |x: usize, y: usize, z: usize| (z * g * g + y * g + x) as Vidx;

    // H block: 7-point stencil (diagonal + 6 neighbours), symmetric.
    for z in 0..g {
        for y in 0..g {
            for x in 0..g {
                let u = id(x, y, z);
                t.push(u, u);
                if x + 1 < g {
                    t.push(u, id(x + 1, y, z));
                    t.push(id(x + 1, y, z), u);
                }
                if y + 1 < g {
                    t.push(u, id(x, y + 1, z));
                    t.push(id(x, y + 1, z), u);
                }
                if z + 1 < g {
                    t.push(u, id(x, y, z + 1));
                    t.push(id(x, y, z + 1), u);
                }
            }
        }
    }

    // J and Jᵀ blocks: each constraint row touches a few Hessian columns.
    // The first column is a *distinct representative* (constraint c gets
    // column ⌊c·nh/n_constraints⌋), which guarantees a perfect matching —
    // the structural nonsingularity real KKT systems have — while the
    // remaining columns are random for realism.
    assert!(
        n_constraints <= nh,
        "need at most g^3 constraints to keep the KKT system structurally nonsingular"
    );
    for c in 0..n_constraints {
        let row = (nh + c) as Vidx;
        let rep = (c as u64 * nh as u64 / n_constraints.max(1) as u64) as usize;
        t.push(row, rep as Vidx); // J representative
        t.push(rep as Vidx, row); // Jᵀ
        for _ in 1..nnz_per_constraint {
            let col = rng.below(nh as u64) as Vidx;
            t.push(row, col);
            t.push(col, row);
        }
        // note: the (2,2) block stays structurally zero — no diagonal here.
    }
    t.sort_dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::MatrixStats;

    #[test]
    fn dimensions() {
        let t = kkt_stencil(4, 10, 3, 1);
        assert_eq!(t.nrows(), 64 + 10);
        assert_eq!(t.ncols(), 74);
    }

    #[test]
    fn constraint_rows_have_zero_diagonal() {
        let t = kkt_stencil(4, 10, 3, 2);
        let c = t.to_csc();
        for k in 64..74u32 {
            assert!(!c.contains(k, k as usize), "constraint diagonal {k} must be zero");
        }
        // Hessian diagonal is full.
        for k in 0..64u32 {
            assert!(c.contains(k, k as usize));
        }
    }

    #[test]
    fn structurally_symmetric() {
        let t = kkt_stencil(3, 5, 2, 3);
        let c = t.to_csc();
        for (i, j) in c.iter() {
            assert!(c.contains(j, i as usize), "asymmetric entry ({i},{j})");
        }
    }

    #[test]
    fn stencil_degree_is_bounded() {
        let s = MatrixStats::from_triples(&kkt_stencil(6, 20, 3, 4));
        assert!(s.avg_row_degree < 10.0);
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn kkt_has_a_perfect_matching() {
        // Structural nonsingularity: the representative construction must
        // guarantee a zero-free-diagonal permutation exists.
        let t = kkt_stencil(5, 60, 3, 9);
        let n = t.nrows();
        let a = t.to_csc();
        // Simple augmenting-path matcher (Kuhn) to avoid a dev-dependency
        // cycle with mcm-core.
        let mut mate_c = vec![usize::MAX; n];
        let mut mate_r = vec![usize::MAX; n];
        fn try_kuhn(
            a: &mcm_sparse::Csc,
            c: usize,
            seen: &mut [bool],
            mate_c: &mut [usize],
            mate_r: &mut [usize],
        ) -> bool {
            for &r in a.col(c) {
                let r = r as usize;
                if seen[r] {
                    continue;
                }
                seen[r] = true;
                if mate_r[r] == usize::MAX || try_kuhn(a, mate_r[r], seen, mate_c, mate_r) {
                    mate_r[r] = c;
                    mate_c[c] = r;
                    return true;
                }
            }
            false
        }
        let mut matched = 0;
        for c in 0..n {
            let mut seen = vec![false; n];
            if try_kuhn(&a, c, &mut seen, &mut mate_c, &mut mate_r) {
                matched += 1;
            }
        }
        assert_eq!(matched, n, "KKT stencil must be structurally nonsingular");
    }
}
