//! Seeded insert/delete/query update traces for the dynamic matching
//! engine (`mcm-dyn`) and the `mcmd` service.
//!
//! A trace is the streaming analogue of a static test matrix: a warmup
//! build phase, then batches of edge updates, each batch closed by a
//! `Query` checkpoint where harnesses compare the incremental engine
//! against a from-scratch recompute. The generator tracks the live edge
//! set so deletes hit live edges, and maintains a *greedy* matching mirror
//! so the `matched_bias` knob can steer deletions toward edges that are
//! likely matched — the expensive repair case (a matched-edge deletion
//! frees both endpoints and forces an augmenting-path search).
//!
//! Deterministic in `seed` (SplitMix64 stream, like every other generator
//! in this crate); the greedy mirror is part of the generator, not a
//! statement about what the engine under test matches.
//!
//! The weighted variants ([`weighted_update_trace`], [`WTraceOp`]) add a
//! seeded integer weight distribution and **weight-perturbation updates**
//! (a live-edge insert redraws the edge's weight) for exercising the
//! weighted incremental engine; [`assign_weights`] turns any static suite
//! instance into a weighted one.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{Triples, Vidx, NIL};

/// One operation of an update trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert edge (row, col).
    Insert(Vidx, Vidx),
    /// Delete edge (row, col).
    Delete(Vidx, Vidx),
    /// Checkpoint: harnesses flush pending updates, repair, and compare
    /// against the recompute oracle here.
    Query,
}

/// Shape and mix of one generated trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceParams {
    /// Row vertices.
    pub n1: usize,
    /// Column vertices.
    pub n2: usize,
    /// Edges inserted (best-effort fresh) before the first `Query`.
    pub warmup_edges: usize,
    /// Update batches after warmup; each ends with a `Query`.
    pub batches: usize,
    /// Insert/delete operations per batch.
    pub ops_per_batch: usize,
    /// Probability an operation is an insert (vs a delete).
    pub insert_frac: f64,
    /// Probability a delete targets a greedily-matched edge (the
    /// matched-edge-deletion bias knob); remaining deletes pick uniformly
    /// among live edges.
    pub matched_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceParams {
    /// A balanced default: as many inserts as deletes, deletions biased
    /// toward matched edges.
    pub fn churn(n1: usize, n2: usize, seed: u64) -> Self {
        Self {
            n1,
            n2,
            warmup_edges: 3 * n1.max(n2),
            batches: 6,
            ops_per_batch: (n1 + n2) / 4,
            insert_frac: 0.5,
            matched_bias: 0.7,
            seed,
        }
    }
}

/// Bookkeeping the generator keeps while emitting ops: the live edge set
/// (for valid deletes) and a greedy matching mirror (for the bias knob).
struct TraceState {
    n2: usize,
    /// Live edges, unordered; swap-removed on delete.
    live: Vec<(Vidx, Vidx)>,
    /// live-position + 1 of each (r, c), 0 = absent (dense: traces are
    /// suite-scale by design).
    pos: Vec<u32>,
    /// Greedy mirror mates.
    mate_r: Vec<Vidx>,
    mate_c: Vec<Vidx>,
    /// Columns currently matched in the greedy mirror (lazily pruned).
    matched_cols: Vec<Vidx>,
}

impl TraceState {
    fn new(n1: usize, n2: usize) -> Self {
        Self {
            n2,
            live: Vec::new(),
            pos: vec![0; n1 * n2],
            mate_r: vec![NIL; n1],
            mate_c: vec![NIL; n2],
            matched_cols: Vec::new(),
        }
    }

    #[inline]
    fn key(&self, r: Vidx, c: Vidx) -> usize {
        r as usize * self.n2 + c as usize
    }

    fn contains(&self, r: Vidx, c: Vidx) -> bool {
        self.pos[self.key(r, c)] != 0
    }

    fn insert(&mut self, r: Vidx, c: Vidx) {
        debug_assert!(!self.contains(r, c));
        self.live.push((r, c));
        let k = self.key(r, c);
        self.pos[k] = self.live.len() as u32;
        if self.mate_r[r as usize] == NIL && self.mate_c[c as usize] == NIL {
            self.mate_r[r as usize] = c;
            self.mate_c[c as usize] = r;
            self.matched_cols.push(c);
        }
    }

    fn delete(&mut self, r: Vidx, c: Vidx) {
        debug_assert!(self.contains(r, c));
        let k = self.key(r, c);
        let at = self.pos[k] as usize - 1;
        let last = *self.live.last().unwrap();
        self.live.swap_remove(at);
        let klast = self.key(last.0, last.1);
        self.pos[klast] = at as u32 + 1;
        self.pos[k] = 0;
        if self.mate_r[r as usize] == c {
            self.mate_r[r as usize] = NIL;
            self.mate_c[c as usize] = NIL;
            // matched_cols entry pruned lazily on the next biased pick.
        }
    }

    /// A greedily-matched live edge, or `None` when the mirror is empty.
    fn pick_matched(&mut self, rng: &mut SplitMix64) -> Option<(Vidx, Vidx)> {
        while !self.matched_cols.is_empty() {
            let at = rng.below(self.matched_cols.len() as u64) as usize;
            let c = self.matched_cols[at];
            let r = self.mate_c[c as usize];
            if r != NIL && self.contains(r, c) {
                return Some((r, c));
            }
            self.matched_cols.swap_remove(at); // stale: unmatched since
        }
        None
    }
}

/// Generates a seeded insert/delete/query trace for an `n1 × n2` dynamic
/// bipartite graph (see [`TraceParams`]). The trace is valid by
/// construction: deletes always hit live edges and inserts are fresh
/// (best-effort — at near-complete density an insert may repeat a live
/// edge, which engines treat as a no-op).
pub fn update_trace(p: &TraceParams) -> Vec<TraceOp> {
    assert!(p.n1 > 0 && p.n2 > 0);
    assert!((0.0..=1.0).contains(&p.insert_frac) && (0.0..=1.0).contains(&p.matched_bias));
    let mut rng = SplitMix64::new(p.seed);
    let mut st = TraceState::new(p.n1, p.n2);
    let mut ops = Vec::with_capacity(p.warmup_edges + p.batches * (p.ops_per_batch + 1) + 1);

    let fresh_edge = |rng: &mut SplitMix64, st: &TraceState| {
        for _ in 0..8 {
            let r = rng.below(p.n1 as u64) as Vidx;
            let c = rng.below(p.n2 as u64) as Vidx;
            if !st.contains(r, c) {
                return Some((r, c));
            }
        }
        None
    };

    for _ in 0..p.warmup_edges {
        if let Some((r, c)) = fresh_edge(&mut rng, &st) {
            st.insert(r, c);
            ops.push(TraceOp::Insert(r, c));
        }
    }
    ops.push(TraceOp::Query);

    for _ in 0..p.batches {
        for _ in 0..p.ops_per_batch {
            let want_insert = rng.next_f64() < p.insert_frac || st.live.is_empty();
            if want_insert {
                if let Some((r, c)) = fresh_edge(&mut rng, &st) {
                    st.insert(r, c);
                    ops.push(TraceOp::Insert(r, c));
                }
            } else {
                let picked =
                    if rng.next_f64() < p.matched_bias { st.pick_matched(&mut rng) } else { None };
                let (r, c) =
                    picked.unwrap_or_else(|| st.live[rng.below(st.live.len() as u64) as usize]);
                st.delete(r, c);
                ops.push(TraceOp::Delete(r, c));
            }
        }
        ops.push(TraceOp::Query);
    }
    ops
}

/// One operation of a *weighted* update trace. An `Insert` whose edge is
/// already live is a **reweight** — the weight-perturbation update the
/// weighted engines must repair incrementally.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WTraceOp {
    /// Insert edge (row, col) with the given weight, or reweight it if
    /// the edge is already live.
    Insert(Vidx, Vidx, f64),
    /// Delete edge (row, col).
    Delete(Vidx, Vidx),
    /// Checkpoint: harnesses flush pending updates, repair, and compare
    /// against the weighted recompute oracle here.
    Query,
}

/// Shape and mix of one generated weighted trace.
#[derive(Clone, Copy, Debug)]
pub struct WTraceParams {
    /// The structural knobs, shared with the unweighted generator.
    pub base: TraceParams,
    /// Weights are drawn uniformly from the integers `1..=max_weight`
    /// (integer-valued `f64`s, so eps-scaled auctions are *exact* and
    /// differential harnesses can assert weight equality).
    pub max_weight: u64,
    /// Probability an insert-slot operation instead perturbs a live
    /// edge's weight (redrawing it from the same distribution).
    pub reweight_frac: f64,
}

impl WTraceParams {
    /// A balanced default over [`TraceParams::churn`]: small integer
    /// weights, a quarter of inserts turned into reweights.
    pub fn churn(n1: usize, n2: usize, seed: u64) -> Self {
        Self { base: TraceParams::churn(n1, n2, seed), max_weight: 50, reweight_frac: 0.25 }
    }
}

/// Assigns seeded integer weights (`1..=max_weight`, as `f64`) to a
/// static edge list — the bridge from the unweighted suite generators to
/// the weighted solvers. Deterministic in `seed`; independent of entry
/// order beyond the order of the output.
pub fn assign_weights(
    entries: &[(Vidx, Vidx)],
    seed: u64,
    max_weight: u64,
) -> Vec<(Vidx, Vidx, f64)> {
    assert!(max_weight >= 1);
    let mut rng = SplitMix64::new(seed);
    entries.iter().map(|&(r, c)| (r, c, (1 + rng.below(max_weight)) as f64)).collect()
}

/// Generates a seeded weighted insert/reweight/delete/query trace (see
/// [`WTraceParams`]). Structurally valid like [`update_trace`]: deletes
/// hit live edges, and every `Insert` either adds a fresh edge or
/// (deliberately, with probability `reweight_frac`) reweights a live one.
pub fn weighted_update_trace(p: &WTraceParams) -> Vec<WTraceOp> {
    let b = &p.base;
    assert!(b.n1 > 0 && b.n2 > 0);
    assert!((0.0..=1.0).contains(&b.insert_frac) && (0.0..=1.0).contains(&b.matched_bias));
    assert!((0.0..=1.0).contains(&p.reweight_frac) && p.max_weight >= 1);
    let mut rng = SplitMix64::new(b.seed);
    let mut st = TraceState::new(b.n1, b.n2);
    let mut ops = Vec::with_capacity(b.warmup_edges + b.batches * (b.ops_per_batch + 1) + 1);
    let draw = |rng: &mut SplitMix64| (1 + rng.below(p.max_weight)) as f64;

    let fresh_edge = |rng: &mut SplitMix64, st: &TraceState| {
        for _ in 0..8 {
            let r = rng.below(b.n1 as u64) as Vidx;
            let c = rng.below(b.n2 as u64) as Vidx;
            if !st.contains(r, c) {
                return Some((r, c));
            }
        }
        None
    };

    for _ in 0..b.warmup_edges {
        if let Some((r, c)) = fresh_edge(&mut rng, &st) {
            st.insert(r, c);
            let w = draw(&mut rng);
            ops.push(WTraceOp::Insert(r, c, w));
        }
    }
    ops.push(WTraceOp::Query);

    for _ in 0..b.batches {
        for _ in 0..b.ops_per_batch {
            let want_insert = rng.next_f64() < b.insert_frac || st.live.is_empty();
            if want_insert {
                let reweight = !st.live.is_empty() && rng.next_f64() < p.reweight_frac;
                if reweight {
                    let (r, c) = st.live[rng.below(st.live.len() as u64) as usize];
                    let w = draw(&mut rng);
                    ops.push(WTraceOp::Insert(r, c, w));
                } else if let Some((r, c)) = fresh_edge(&mut rng, &st) {
                    st.insert(r, c);
                    let w = draw(&mut rng);
                    ops.push(WTraceOp::Insert(r, c, w));
                }
            } else {
                let picked =
                    if rng.next_f64() < b.matched_bias { st.pick_matched(&mut rng) } else { None };
                let (r, c) =
                    picked.unwrap_or_else(|| st.live[rng.below(st.live.len() as u64) as usize]);
                st.delete(r, c);
                ops.push(WTraceOp::Delete(r, c));
            }
        }
        ops.push(WTraceOp::Query);
    }
    ops
}

/// Materializes the weighted edge set a trace prefix builds (ignoring
/// queries; last write wins on reweights) — the weighted recompute
/// oracle's view of the graph at any checkpoint.
pub fn materialize_weighted(n1: usize, n2: usize, prefix: &[WTraceOp]) -> Vec<(Vidx, Vidx, f64)> {
    let mut live: Vec<Option<f64>> = vec![None; n1 * n2];
    for op in prefix {
        match *op {
            WTraceOp::Insert(r, c, w) => live[r as usize * n2 + c as usize] = Some(w),
            WTraceOp::Delete(r, c) => live[r as usize * n2 + c as usize] = None,
            WTraceOp::Query => {}
        }
    }
    let mut out = Vec::new();
    for r in 0..n1 {
        for c in 0..n2 {
            if let Some(w) = live[r * n2 + c] {
                out.push((r as Vidx, c as Vidx, w));
            }
        }
    }
    out
}

/// Materializes the edge set a trace prefix builds (ignoring queries) —
/// the recompute oracle's view of the graph at any checkpoint.
pub fn materialize(n1: usize, n2: usize, prefix: &[TraceOp]) -> Triples {
    let mut live: Vec<bool> = vec![false; n1 * n2];
    for op in prefix {
        match *op {
            TraceOp::Insert(r, c) => live[r as usize * n2 + c as usize] = true,
            TraceOp::Delete(r, c) => live[r as usize * n2 + c as usize] = false,
            TraceOp::Query => {}
        }
    }
    let mut t = Triples::new(n1, n2);
    for r in 0..n1 {
        for c in 0..n2 {
            if live[r * n2 + c] {
                t.push(r as Vidx, c as Vidx);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> TraceParams {
        TraceParams { matched_bias: 0.8, ..TraceParams::churn(12, 10, seed) }
    }

    #[test]
    fn trace_is_deterministic_in_seed() {
        assert_eq!(update_trace(&params(7)), update_trace(&params(7)));
        assert_ne!(update_trace(&params(7)), update_trace(&params(8)));
    }

    #[test]
    fn trace_is_valid_against_a_mirror() {
        // Every delete hits a live edge; every insert is fresh; the batch
        // structure closes with queries.
        let ops = update_trace(&params(3));
        let p = params(3);
        let mut live = vec![false; p.n1 * p.n2];
        let mut queries = 0;
        for (step, op) in ops.iter().enumerate() {
            match *op {
                TraceOp::Insert(r, c) => {
                    let k = r as usize * p.n2 + c as usize;
                    assert!(!live[k], "step {step}: duplicate insert ({r},{c})");
                    live[k] = true;
                }
                TraceOp::Delete(r, c) => {
                    let k = r as usize * p.n2 + c as usize;
                    assert!(live[k], "step {step}: delete of dead edge ({r},{c})");
                    live[k] = false;
                }
                TraceOp::Query => queries += 1,
            }
        }
        assert_eq!(queries, p.batches + 1, "one query per batch plus warmup");
        assert_eq!(ops.last(), Some(&TraceOp::Query));
    }

    #[test]
    fn matched_bias_steers_deletions() {
        // With full bias every delete (while the mirror has matched edges)
        // hits a mirror-matched edge; with zero bias deletes are uniform.
        // Count how many deletes hit the greedy mirror under each knob.
        let hit_rate = |bias: f64| {
            let p = TraceParams {
                insert_frac: 0.35,
                matched_bias: bias,
                batches: 10,
                ..TraceParams::churn(16, 16, 99)
            };
            let ops = update_trace(&p);
            let mut st = TraceState::new(p.n1, p.n2);
            let (mut deletes, mut hits) = (0u32, 0u32);
            for op in &ops {
                match *op {
                    TraceOp::Insert(r, c) => st.insert(r, c),
                    TraceOp::Delete(r, c) => {
                        deletes += 1;
                        if st.mate_r[r as usize] == c {
                            hits += 1;
                        }
                        st.delete(r, c);
                    }
                    TraceOp::Query => {}
                }
            }
            assert!(deletes > 10, "trace produced too few deletes to measure");
            f64::from(hits) / f64::from(deletes)
        };
        assert!(hit_rate(1.0) > hit_rate(0.0) + 0.2, "bias knob has no effect");
    }

    fn wparams(seed: u64) -> WTraceParams {
        WTraceParams { max_weight: 9, reweight_frac: 0.3, ..WTraceParams::churn(12, 10, seed) }
    }

    #[test]
    fn weighted_trace_is_deterministic_and_valid() {
        assert_eq!(weighted_update_trace(&wparams(7)), weighted_update_trace(&wparams(7)));
        assert_ne!(weighted_update_trace(&wparams(7)), weighted_update_trace(&wparams(8)));

        let p = wparams(3);
        let ops = weighted_update_trace(&p);
        let (n1, n2) = (p.base.n1, p.base.n2);
        let mut live = vec![false; n1 * n2];
        let (mut fresh, mut reweights, mut queries) = (0u32, 0u32, 0u32);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                WTraceOp::Insert(r, c, w) => {
                    assert_eq!(w, w.trunc(), "step {step}: weight {w} is not an integer");
                    assert!(
                        (1.0..=p.max_weight as f64).contains(&w),
                        "step {step}: weight {w} out of range"
                    );
                    let k = r as usize * n2 + c as usize;
                    if live[k] {
                        reweights += 1; // a live-edge insert is a reweight
                    } else {
                        fresh += 1;
                        live[k] = true;
                    }
                }
                WTraceOp::Delete(r, c) => {
                    let k = r as usize * n2 + c as usize;
                    assert!(live[k], "step {step}: delete of dead edge ({r},{c})");
                    live[k] = false;
                }
                WTraceOp::Query => queries += 1,
            }
        }
        assert_eq!(queries as usize, p.base.batches + 1);
        assert!(fresh > 0 && reweights > 0, "trace must mix fresh inserts and reweights");
    }

    #[test]
    fn zero_reweight_frac_keeps_every_insert_fresh() {
        let p = WTraceParams { reweight_frac: 0.0, ..wparams(5) };
        let ops = weighted_update_trace(&p);
        let mut live = vec![false; p.base.n1 * p.base.n2];
        for op in &ops {
            match *op {
                WTraceOp::Insert(r, c, _) => {
                    let k = r as usize * p.base.n2 + c as usize;
                    assert!(!live[k], "reweight emitted with reweight_frac 0");
                    live[k] = true;
                }
                WTraceOp::Delete(r, c) => live[r as usize * p.base.n2 + c as usize] = false,
                WTraceOp::Query => {}
            }
        }
    }

    #[test]
    fn materialize_weighted_keeps_the_last_weight() {
        let p = wparams(11);
        let ops = weighted_update_trace(&p);
        let got = materialize_weighted(p.base.n1, p.base.n2, &ops);
        // Replay through a dense last-write-wins mirror and compare.
        let mut mirror: Vec<Option<f64>> = vec![None; p.base.n1 * p.base.n2];
        for op in &ops {
            match *op {
                WTraceOp::Insert(r, c, w) => mirror[r as usize * p.base.n2 + c as usize] = Some(w),
                WTraceOp::Delete(r, c) => mirror[r as usize * p.base.n2 + c as usize] = None,
                WTraceOp::Query => {}
            }
        }
        assert_eq!(got.len(), mirror.iter().filter(|w| w.is_some()).count());
        for &(r, c, w) in &got {
            assert_eq!(mirror[r as usize * p.base.n2 + c as usize], Some(w));
        }
    }

    #[test]
    fn assign_weights_is_seeded_and_in_range() {
        let edges: Vec<(Vidx, Vidx)> = (0..40).map(|i| (i % 8, (i * 3) % 8)).collect();
        let a = assign_weights(&edges, 42, 50);
        let b = assign_weights(&edges, 42, 50);
        let c = assign_weights(&edges, 43, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for &(_, _, w) in &a {
            assert_eq!(w, w.trunc());
            assert!((1.0..=50.0).contains(&w));
        }
    }

    #[test]
    fn materialize_agrees_with_full_replay() {
        let p = params(11);
        let ops = update_trace(&p);
        let t = materialize(p.n1, p.n2, &ops);
        // Replay through a dense mirror and compare.
        let mut live = vec![false; p.n1 * p.n2];
        for op in &ops {
            match *op {
                TraceOp::Insert(r, c) => live[r as usize * p.n2 + c as usize] = true,
                TraceOp::Delete(r, c) => live[r as usize * p.n2 + c as usize] = false,
                TraceOp::Query => {}
            }
        }
        assert_eq!(t.len(), live.iter().filter(|&&b| b).count());
        for &(r, c) in t.entries() {
            assert!(live[r as usize * p.n2 + c as usize]);
        }
    }
}
