//! Stand-ins for the paper's Table II real matrices.
//!
//! The paper evaluates on 13 large matrices from the UF (SuiteSparse)
//! collection — "the largest unsymmetric and symmetric matrices that have at
//! least several thousands of unmatched vertices after computing a maximal
//! matching" (§V-B). The collection is not available offline here, so each
//! matrix is replaced by a *structure-class* stand-in at laptop scale
//! (DESIGN.md §2): same qualitative degree distribution, diameter class, and
//! matching deficiency, ~2–3 orders of magnitude smaller. The six names the
//! paper's text discusses directly (`amazon-2008`, `cage15`, `wikipedia`,
//! `delaunay_n24`, `road_usa`, `nlpkkt200`) are kept; the remaining seven
//! are representative members of the classes the collection's "largest
//! matrices" skew towards (web, social, citation, mesh, KKT).
//!
//! `table2` in `mcm-bench` re-emits the Table II inventory with the
//! stand-ins' actual statistics next to the paper's quoted sizes.

use crate::banded::banded;
use crate::er::uniform_coldeg;
use crate::kkt::kkt_stencil;
use crate::mesh::{bubble_mesh, road_grid, triangulated_grid};
use crate::rmat::{rmat, rmat_profile};
use crate::smallworld::watts_strogatz;
use mcm_sparse::Triples;

/// Structure class of a Table II matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphClass {
    /// Co-purchase / social small-world (flat-ish degrees, low diameter).
    SmallWorld,
    /// Banded diffusion (cage family).
    Banded,
    /// Power-law web/social/citation graph.
    PowerLaw,
    /// Planar triangulation / refined 2D mesh.
    PlanarMesh,
    /// Road network (lattice-like, huge diameter).
    RoadNetwork,
    /// Saddle-point (KKT) optimization matrix.
    Kkt,
    /// Rectangular combinatorial matrix.
    Combinatorial,
}

impl GraphClass {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            GraphClass::SmallWorld => "small-world",
            GraphClass::Banded => "banded",
            GraphClass::PowerLaw => "power-law",
            GraphClass::PlanarMesh => "planar mesh",
            GraphClass::RoadNetwork => "road network",
            GraphClass::Kkt => "KKT",
            GraphClass::Combinatorial => "combinatorial",
        }
    }
}

/// One Table II row: the paper's matrix and our stand-in generator.
#[derive(Clone)]
pub struct StandIn {
    /// UF collection name as used in the paper.
    pub name: &'static str,
    /// Structure class driving the stand-in choice.
    pub class: GraphClass,
    /// The UF matrix's rows (paper scale), for the Table II report.
    pub paper_nrows: u64,
    /// The UF matrix's columns (paper scale).
    pub paper_ncols: u64,
    /// The UF matrix's nonzeros (paper scale).
    pub paper_nnz: u64,
    /// Generator producing the scaled-down stand-in.
    pub gen: fn(u64) -> Triples,
}

impl StandIn {
    /// Generates the stand-in with its canonical seed (derived from the
    /// name, so every figure harness sees identical inputs).
    pub fn generate(&self) -> Triples {
        let seed = self
            .name
            .bytes()
            .fold(0xCBF2_9CE4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01B3));
        (self.gen)(seed)
    }
}

fn gen_amazon(seed: u64) -> Triples {
    watts_strogatz(32_768, 3, 0.12, seed)
}

fn gen_cage15(seed: u64) -> Triples {
    banded(49_152, 4, 4, seed)
}

/// Stand-in scale for the four RMAT-shaped power-law rows; the quadrant
/// probabilities and edge factors live in the shared profile table
/// ([`crate::rmat::RMAT_PROFILES`]), keyed by the Table II name.
const POWER_LAW_SCALE: u32 = 15;

fn gen_rmat_standin(name: &str, seed: u64) -> Triples {
    let profile = rmat_profile(name).expect("power-law stand-in must have a named RMAT profile");
    rmat(profile.params(POWER_LAW_SCALE), seed)
}

fn gen_cit_patents(seed: u64) -> Triples {
    gen_rmat_standin("cit-Patents", seed)
}

fn gen_delaunay(seed: u64) -> Triples {
    triangulated_grid(180, 180, seed)
}

fn gen_gl7d18(seed: u64) -> Triples {
    // GL7d18 is rectangular (1.9M × 1.5M): keep the aspect ratio. Column
    // degrees are kept low so the maximum matching is non-trivial to reach
    // from a maximal one — the paper's §V-B selection criterion ("at least
    // several thousands of unmatched vertices after a maximal matching").
    uniform_coldeg(36_000, 28_800, 2, 9, seed)
}

fn gen_hugebubbles(seed: u64) -> Triples {
    bubble_mesh(200, 200, 12, seed)
}

fn gen_hugetrace(seed: u64) -> Triples {
    bubble_mesh(190, 190, 4, seed)
}

fn gen_kkt_power(seed: u64) -> Triples {
    kkt_stencil(28, 8_000, 2, seed)
}

fn gen_ljournal(seed: u64) -> Triples {
    gen_rmat_standin("ljournal-2008", seed)
}

fn gen_nlpkkt200(seed: u64) -> Triples {
    kkt_stencil(30, 5_000, 3, seed)
}

fn gen_road_usa(seed: u64) -> Triples {
    road_grid(180, 180, 0.12, seed)
}

fn gen_wb_edu(seed: u64) -> Triples {
    gen_rmat_standin("wb-edu", seed)
}

fn gen_wikipedia(seed: u64) -> Triples {
    gen_rmat_standin("wikipedia-20070206", seed)
}

/// The 13-matrix Table II inventory, alphabetical like the paper's table.
pub fn table2() -> Vec<StandIn> {
    vec![
        StandIn {
            name: "amazon-2008",
            class: GraphClass::SmallWorld,
            paper_nrows: 735_323,
            paper_ncols: 735_323,
            paper_nnz: 5_158_388,
            gen: gen_amazon,
        },
        StandIn {
            name: "cage15",
            class: GraphClass::Banded,
            paper_nrows: 5_154_859,
            paper_ncols: 5_154_859,
            paper_nnz: 99_199_551,
            gen: gen_cage15,
        },
        StandIn {
            name: "cit-Patents",
            class: GraphClass::PowerLaw,
            paper_nrows: 3_774_768,
            paper_ncols: 3_774_768,
            paper_nnz: 16_518_948,
            gen: gen_cit_patents,
        },
        StandIn {
            name: "delaunay_n24",
            class: GraphClass::PlanarMesh,
            paper_nrows: 16_777_216,
            paper_ncols: 16_777_216,
            paper_nnz: 100_663_202,
            gen: gen_delaunay,
        },
        StandIn {
            name: "GL7d18",
            class: GraphClass::Combinatorial,
            paper_nrows: 1_955_309,
            paper_ncols: 1_548_650,
            paper_nnz: 35_590_540,
            gen: gen_gl7d18,
        },
        StandIn {
            name: "hugebubbles-00010",
            class: GraphClass::PlanarMesh,
            paper_nrows: 19_458_087,
            paper_ncols: 19_458_087,
            paper_nnz: 58_359_528,
            gen: gen_hugebubbles,
        },
        StandIn {
            name: "hugetrace-00020",
            class: GraphClass::PlanarMesh,
            paper_nrows: 16_002_413,
            paper_ncols: 16_002_413,
            paper_nnz: 47_997_626,
            gen: gen_hugetrace,
        },
        StandIn {
            name: "kkt_power",
            class: GraphClass::Kkt,
            paper_nrows: 2_063_494,
            paper_ncols: 2_063_494,
            paper_nnz: 12_771_361,
            gen: gen_kkt_power,
        },
        StandIn {
            name: "ljournal-2008",
            class: GraphClass::PowerLaw,
            paper_nrows: 5_363_260,
            paper_ncols: 5_363_260,
            paper_nnz: 79_023_142,
            gen: gen_ljournal,
        },
        StandIn {
            name: "nlpkkt200",
            class: GraphClass::Kkt,
            paper_nrows: 16_240_000,
            paper_ncols: 16_240_000,
            paper_nnz: 440_225_632,
            gen: gen_nlpkkt200,
        },
        StandIn {
            name: "road_usa",
            class: GraphClass::RoadNetwork,
            paper_nrows: 23_947_347,
            paper_ncols: 23_947_347,
            paper_nnz: 57_708_624,
            gen: gen_road_usa,
        },
        StandIn {
            name: "wb-edu",
            class: GraphClass::PowerLaw,
            paper_nrows: 9_845_725,
            paper_ncols: 9_845_725,
            paper_nnz: 57_156_537,
            gen: gen_wb_edu,
        },
        StandIn {
            name: "wikipedia-20070206",
            class: GraphClass::PowerLaw,
            paper_nrows: 3_566_907,
            paper_ncols: 3_566_907,
            paper_nnz: 45_030_389,
            gen: gen_wikipedia,
        },
    ]
}

/// Looks up one Table II stand-in by name.
pub fn by_name(name: &str) -> Option<StandIn> {
    table2().into_iter().find(|s| s.name == name)
}

/// The four representative matrices used by the breakdown/initializer
/// figures (Figs. 3, 5, 7): one small-world, one banded, one power-law, one
/// road network — spanning the diameter/degree spectrum.
pub fn representative4() -> Vec<StandIn> {
    ["amazon-2008", "cage15", "wikipedia-20070206", "road_usa"]
        .iter()
        .map(|n| by_name(n).expect("representative matrix must be in table2"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::stats::{DegreeHistogram, MatrixStats};

    #[test]
    fn thirteen_matrices() {
        let t = table2();
        assert_eq!(t.len(), 13);
        // Unique names.
        let mut names: Vec<_> = t.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("road_usa").is_some());
        assert!(by_name("not-a-matrix").is_none());
    }

    #[test]
    fn representative4_spans_classes() {
        let r = representative4();
        assert_eq!(r.len(), 4);
        let classes: Vec<_> = r.iter().map(|s| s.class).collect();
        assert!(classes.contains(&GraphClass::RoadNetwork));
        assert!(classes.contains(&GraphClass::PowerLaw));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = by_name("amazon-2008").unwrap();
        assert_eq!(s.generate(), s.generate());
    }

    #[test]
    fn gl7d18_is_rectangular() {
        let t = by_name("GL7d18").unwrap().generate();
        assert_ne!(t.nrows(), t.ncols());
    }

    #[test]
    fn classes_have_expected_shapes() {
        let road = by_name("road_usa").unwrap().generate();
        let rs = MatrixStats::from_triples(&road);
        assert!(rs.max_row_degree <= 4, "road max degree {}", rs.max_row_degree);

        let wiki = by_name("wikipedia-20070206").unwrap().generate();
        let skew = DegreeHistogram::skew(&wiki.to_csc().row_degrees());
        assert!(skew > 10.0, "wikipedia stand-in should be heavy-tailed: {skew}");
    }

    #[test]
    fn all_standins_generate_nonempty() {
        for s in table2() {
            let t = s.generate();
            assert!(t.len() > 1000, "{} too small: {}", s.name, t.len());
            assert!(t.nrows() >= 16_000, "{} rows {}", s.name, t.nrows());
        }
    }
}
