//! # mcm-gen — graph/matrix generators
//!
//! Two families of inputs drive the paper's evaluation:
//!
//! 1. **Synthetic RMAT matrices** (§V-B): Graph500 (`a=.57, b=c=.19,
//!    d=.05`, 32 nonzeros/row), SSCA#2 (`a=.6, b=c=d=.4/3`, 16/row) and
//!    Erdős–Rényi (`a=b=c=d=.25`, 32/row) — implemented bit-faithfully in
//!    [`rmat`].
//! 2. **Real matrices from the UF/SuiteSparse collection** (Table II). The
//!    collection is not available offline, so [`realistic`] provides
//!    structure-class stand-ins — planar meshes for `delaunay_n24`, lattice
//!    road networks for `road_usa`, power-law RMAT for `wikipedia`, banded
//!    diffusion for `cage15`, KKT stencils for `nlpkkt200`, and so on — at
//!    laptop scale. DESIGN.md §2 documents why class-preserving stand-ins
//!    keep the evaluation's shape.
//!
//! All generators are deterministic in their `seed` across platforms
//! (self-contained SplitMix64 streams, no `rand` dependency in the library).

pub mod banded;
pub mod bipartite;
pub mod er;
pub mod hard;
pub mod kkt;
pub mod mesh;
pub mod realistic;
pub mod rmat;
pub mod smallworld;
pub mod suite;
pub mod trace;

pub use realistic::{representative4, table2, StandIn};
pub use rmat::{rmat, rmat_profile, stream_edges, RmatParams, RmatProfile, RMAT_PROFILES};
pub use suite::{simtest_suite, update_trace_suite};
pub use trace::{
    assign_weights, materialize_weighted, update_trace, weighted_update_trace, TraceOp,
    TraceParams, WTraceOp, WTraceParams,
};
