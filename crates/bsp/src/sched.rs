//! Deterministic schedule perturbation & fault injection (the `simtest`
//! substrate).
//!
//! The channel engine ([`crate::engine`]) and the RMA shim ([`crate::rma`])
//! normally execute one fixed, friendly schedule: collectives send in group
//! order, and path-parallel augmentation services every one-sided op in
//! program order. Real MPI gives no such guarantee — message delivery
//! reorders, ranks stall, transports retry, and concurrent
//! `MPI_Fetch_and_op` streams interleave arbitrarily. This module makes
//! those adversarial schedules *reproducible*:
//!
//! * [`Schedule`] — a seeded decision stream (SplitMix64). Every
//!   perturbation the harness applies is a pure function of the seed, so
//!   any failing schedule replays exactly from its seed.
//! * [`RankSched`] — per-rank perturbation state for the channel engine:
//!   permuted send/receive service order inside collectives, injected
//!   stalls (`thread::yield_now` bursts), and bounded send retries over the
//!   engine's bounded channels.
//! * [`SimWindow`] + [`run_interleaved`] — a serviced one-sided window:
//!   concurrent origin tasks each issue one RMA call per step and a
//!   [`Schedule`] picks which origin advances next, exploring adversarial
//!   interleavings of `get`/`put`/`fetch_and_put` on shared slots (the
//!   vertex-disjointness invariant of Algorithm 4 lives or dies here).
//! * [`FaultPlan`] — deliberate bug injection (e.g. dropping the fetch half
//!   of `fetch_and_put`), used to prove the harness actually catches
//!   interleaving bugs within its seed budget (DESIGN.md §10).
//!
//! Soundness note: perturbations only permute *service order* and add
//! *delays*; they never drop, duplicate, or corrupt payloads (except under
//! an explicit [`FaultPlan`]). Any observable divergence under a schedule
//! is therefore a real ordering bug in the code under test, not an artifact
//! of the harness.

use mcm_sparse::permute::SplitMix64;
use mcm_sparse::{DenseVec, Vidx, NIL};

/// SplitMix64 finalizer: decorrelates fork streams and phase reseeds.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deliberately injected defects, for harness self-tests only: a plan other
/// than [`FaultPlan::default`] makes the window *wrong on purpose* so tests
/// can assert the differential sweeps detect it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Break [`SimWindow::fetch_and_put`]: perform the put but lose the
    /// fetched previous value (return `NIL`) — the classic "used `MPI_Put`
    /// where `MPI_Fetch_and_op` was required" bug that silently truncates
    /// augmenting paths.
    pub drop_fetch: bool,
}

impl FaultPlan {
    /// The canonical injected bug of the acceptance criteria.
    pub fn broken_fetch_and_put() -> Self {
        Self { drop_fetch: true }
    }

    /// `true` when no fault is armed.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// Knobs for how aggressively a [`Schedule`] perturbs execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Permute send/receive/service orders (the core perturbation).
    pub reorder: bool,
    /// Probability (per mille) that any perturbation point stalls.
    pub stall_per_mille: u16,
    /// Longest injected stall, in `thread::yield_now` calls.
    pub max_stall_yields: u32,
    /// Bounded transient-failure retries per engine send (`try_send`
    /// attempts before falling back to a blocking send).
    pub max_send_retries: u32,
    /// Armed faults (must be [`FaultPlan::default`] outside self-tests).
    pub fault: FaultPlan,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            reorder: true,
            stall_per_mille: 250,
            max_stall_yields: 8,
            max_send_retries: 3,
            fault: FaultPlan::default(),
        }
    }
}

/// A seeded, replayable stream of scheduling decisions.
///
/// Every decision (`pick`, `permutation`, `stall_yields`, ...) consumes the
/// internal SplitMix64 stream and folds the outcome into a running trace
/// hash, so two runs from the same seed make byte-identical decisions —
/// and a mismatch in [`Schedule::trace_hash`] proves two runs diverged.
#[derive(Clone, Debug)]
pub struct Schedule {
    seed: u64,
    cfg: SchedConfig,
    rng: SplitMix64,
    decisions: u64,
    trace: u64,
}

impl Schedule {
    /// A schedule with default perturbation strength.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, SchedConfig::default())
    }

    /// A schedule with explicit knobs.
    pub fn with_config(seed: u64, cfg: SchedConfig) -> Self {
        Self {
            seed,
            cfg,
            rng: SplitMix64::new(mix(seed)),
            decisions: 0,
            trace: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// The seed that replays this schedule exactly.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The perturbation knobs.
    pub fn config(&self) -> SchedConfig {
        self.cfg
    }

    /// Armed fault plan (clean by default).
    pub fn fault(&self) -> FaultPlan {
        self.cfg.fault
    }

    /// Number of decisions consumed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// FNV-style hash of every decision taken; equal hashes across two runs
    /// certify the schedules were identical (the replay check).
    pub fn trace_hash(&self) -> u64 {
        self.trace
    }

    /// A decorrelated child schedule (e.g. one per rank): deterministic in
    /// `(seed, stream)`, independent of decisions taken on `self`.
    pub fn fork(&self, stream: u64) -> Schedule {
        Schedule::with_config(mix(self.seed ^ mix(stream.wrapping_add(1))), self.cfg)
    }

    /// Reseeds the decision stream for a new phase/epoch so that later
    /// phases explore different interleavings while staying a pure function
    /// of `(seed, phase)`.
    pub fn next_phase(&mut self, phase: u64) {
        self.rng = SplitMix64::new(mix(self.seed ^ mix(0x5EED ^ phase)));
    }

    #[inline]
    fn draw(&mut self, bound: u64) -> u64 {
        let v = if bound <= 1 { 0 } else { self.rng.below(bound) };
        self.decisions += 1;
        self.trace = (self.trace ^ v.wrapping_add(bound)).wrapping_mul(0x100_0000_01B3);
        v
    }

    /// Uniform pick in `0..n` (`n ≥ 1`).
    #[inline]
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n >= 1, "pick from empty set");
        self.draw(n as u64) as usize
    }

    /// `true` with probability `per_mille / 1000`.
    #[inline]
    pub fn coin(&mut self, per_mille: u16) -> bool {
        self.draw(1000) < per_mille as u64
    }

    /// A service-order permutation of `0..n`: Fisher–Yates when reordering
    /// is enabled, identity otherwise.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        if self.cfg.reorder {
            for k in (1..n).rev() {
                let j = self.draw(k as u64 + 1) as usize;
                p.swap(k, j);
            }
        }
        p
    }

    /// Length of the stall (in yields) to inject at this perturbation
    /// point; usually 0.
    pub fn stall_yields(&mut self) -> u32 {
        if self.cfg.max_stall_yields == 0 || !self.coin(self.cfg.stall_per_mille) {
            return 0;
        }
        1 + self.draw(self.cfg.max_stall_yields as u64) as u32
    }
}

/// Per-rank perturbation state threaded into the channel engine by
/// [`crate::engine::run_ranks_sched`]. Wraps a forked [`Schedule`] and
/// counts what was injected (the engine's accounting tests assert that
/// stalls/retries never change payloads or `sent_elems`).
#[derive(Clone, Debug)]
pub struct RankSched {
    sched: Schedule,
    /// Total injected yields on this rank.
    pub stalls: u64,
    /// Total transient send failures retried on this rank.
    pub retries: u64,
}

impl RankSched {
    /// Perturbation state for one rank.
    pub fn new(sched: Schedule) -> Self {
        Self { sched, stalls: 0, retries: 0 }
    }

    /// Seed of the underlying (forked) schedule.
    pub fn seed(&self) -> u64 {
        self.sched.seed()
    }

    /// Replay certificate for this rank's decision stream.
    pub fn trace_hash(&self) -> u64 {
        self.sched.trace_hash()
    }

    /// Injects a (possibly empty) stall at a perturbation point.
    pub fn maybe_stall(&mut self) {
        let yields = self.sched.stall_yields();
        for _ in 0..yields {
            std::thread::yield_now();
        }
        self.stalls += yields as u64;
    }

    /// Service-order permutation for an `n`-way collective step.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        self.sched.permutation(n)
    }

    /// How many transient failures to tolerate per send.
    pub fn retry_budget(&self) -> u32 {
        self.sched.config().max_send_retries
    }

    /// Records one transient send failure that was retried.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }
}

/// A serviced one-sided window over a set of dense vectors (`MPI_Win`
/// stand-in for the simtest harness).
///
/// Unlike [`crate::rma::RmaWindow`] — which charges modeled time but
/// executes ops immediately in program order — `SimWindow` is driven by
/// [`run_interleaved`], which lets a [`Schedule`] permute the *service
/// order* of concurrent origins. Each `get`/`put`/`fetch_and_put` is one
/// atomic service step; `fetch_and_put` is the read-modify-write the
/// disjointness arguments of Algorithm 4 rely on.
pub struct SimWindow<'a> {
    vecs: Vec<&'a mut DenseVec>,
    fault: FaultPlan,
    ops: u64,
}

impl<'a> SimWindow<'a> {
    /// Opens a window over `vecs`; `win` arguments of the op methods index
    /// into this slice.
    pub fn new(vecs: Vec<&'a mut DenseVec>, fault: FaultPlan) -> Self {
        Self { vecs, fault, ops: 0 }
    }

    /// One-sided calls serviced so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// `MPI_Get`.
    #[inline]
    pub fn get(&mut self, win: usize, idx: Vidx) -> Vidx {
        self.ops += 1;
        self.vecs[win].get(idx)
    }

    /// `MPI_Put`.
    #[inline]
    pub fn put(&mut self, win: usize, idx: Vidx, v: Vidx) {
        self.ops += 1;
        self.vecs[win].set(idx, v);
    }

    /// `MPI_Fetch_and_op` with replace: atomically swap in `v` and return
    /// the previous value. Under [`FaultPlan::drop_fetch`] the fetch is
    /// lost (`NIL` returned) while the put still lands — the injected bug
    /// the harness must catch.
    #[inline]
    pub fn fetch_and_put(&mut self, win: usize, idx: Vidx, v: Vidx) -> Vidx {
        self.ops += 1;
        let prev = self.vecs[win].get(idx);
        self.vecs[win].set(idx, v);
        if self.fault.drop_fetch {
            return NIL;
        }
        prev
    }
}

/// A concurrent origin (one simulated rank's op stream) driven by
/// [`run_interleaved`]: each `step` issues exactly one one-sided call and
/// returns `false` once the stream is exhausted.
pub trait OriginTask {
    /// Issues the next one-sided call; `false` = done.
    fn step(&mut self, win: &mut SimWindow<'_>) -> bool;
}

/// Services concurrent origin op-streams in a schedule-chosen order: while
/// any task is live, the schedule picks one and it issues a single call.
/// Returns the number of service steps. Every interleaving a real RMA
/// epoch could produce at per-call granularity is reachable by some seed.
pub fn run_interleaved<T: OriginTask>(
    win: &mut SimWindow<'_>,
    sched: &mut Schedule,
    tasks: &mut [T],
) -> u64 {
    let mut live: Vec<usize> = (0..tasks.len()).collect();
    let mut steps = 0u64;
    while !live.is_empty() {
        let k = sched.pick(live.len());
        steps += 1;
        if !tasks[live[k]].step(win) {
            live.swap_remove(k);
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_decisions() {
        let run = |seed: u64| {
            let mut s = Schedule::new(seed);
            let picks: Vec<usize> = (0..50).map(|_| s.pick(7)).collect();
            let perm = s.permutation(9);
            (picks, perm, s.trace_hash(), s.decisions())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).2, run(43).2, "different seeds should diverge");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut s = Schedule::new(7);
        for n in [0usize, 1, 2, 5, 17] {
            let mut p = s.permutation(n);
            p.sort_unstable();
            assert_eq!(p, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reorder_off_gives_identity() {
        let cfg = SchedConfig { reorder: false, ..SchedConfig::default() };
        let mut s = Schedule::with_config(3, cfg);
        assert_eq!(s.permutation(6), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let base = Schedule::new(5);
        let a1: Vec<usize> = {
            let mut f = base.fork(0);
            (0..20).map(|_| f.pick(100)).collect()
        };
        let a2: Vec<usize> = {
            let mut f = base.fork(0);
            (0..20).map(|_| f.pick(100)).collect()
        };
        let b: Vec<usize> = {
            let mut f = base.fork(1);
            (0..20).map(|_| f.pick(100)).collect()
        };
        assert_eq!(a1, a2, "same fork stream must replay");
        assert_ne!(a1, b, "distinct streams must decorrelate");
    }

    #[test]
    fn next_phase_is_a_function_of_seed_and_phase() {
        let mut s = Schedule::new(9);
        let _ = s.pick(10); // consume some state
        s.next_phase(3);
        let x = s.pick(1000);
        let mut t = Schedule::new(9);
        t.next_phase(3);
        assert_eq!(t.pick(1000), x);
    }

    #[test]
    fn stalls_respect_bounds() {
        let cfg =
            SchedConfig { stall_per_mille: 1000, max_stall_yields: 4, ..SchedConfig::default() };
        let mut s = Schedule::with_config(1, cfg);
        for _ in 0..200 {
            let y = s.stall_yields();
            assert!((1..=4).contains(&y));
        }
        let quiet = SchedConfig { stall_per_mille: 0, ..SchedConfig::default() };
        let mut q = Schedule::with_config(1, quiet);
        assert!((0..200).all(|_| q.stall_yields() == 0));
    }

    /// A racer that issues one fetch_and_put and records what it saw.
    struct Racer {
        id: Vidx,
        slot: Vidx,
        saw: Option<Vidx>,
    }
    impl OriginTask for Racer {
        fn step(&mut self, win: &mut SimWindow<'_>) -> bool {
            self.saw = Some(win.fetch_and_put(0, self.slot, self.id));
            false
        }
    }

    #[test]
    fn fetch_and_put_race_has_exactly_one_winner_under_all_orders() {
        for seed in 0..64 {
            let mut slot = DenseVec::nil(1);
            let mut win = SimWindow::new(vec![&mut slot], FaultPlan::default());
            let mut racers: Vec<Racer> =
                (0..6).map(|id| Racer { id, slot: 0, saw: None }).collect();
            let mut sched = Schedule::new(seed);
            let steps = run_interleaved(&mut win, &mut sched, &mut racers);
            assert_eq!(steps, 6);
            // Exactly one racer observed the initial NIL; the rest saw a
            // unique predecessor — the atomic swap chain.
            let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
            assert_eq!(winners, 1, "seed {seed}");
            let mut seen: Vec<Vidx> = racers.iter().map(|r| r.saw.unwrap()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 6, "seed {seed}: lost update in swap chain");
        }
    }

    #[test]
    fn broken_fetch_and_put_is_observable() {
        let mut slot = DenseVec::nil(1);
        let mut win = SimWindow::new(vec![&mut slot], FaultPlan::broken_fetch_and_put());
        let mut racers: Vec<Racer> = (0..4).map(|id| Racer { id, slot: 0, saw: None }).collect();
        let mut sched = Schedule::new(0);
        run_interleaved(&mut win, &mut sched, &mut racers);
        // Every racer "wins": the lost fetch collapses the swap chain.
        assert!(racers.iter().all(|r| r.saw == Some(NIL)));
    }
}
