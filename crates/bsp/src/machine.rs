//! Machine and process-grid configuration.
//!
//! The paper (§V-A): *"When p cores are allocated for an experiment, we
//! create a `√(p/t) × √(p/t)` process grid where t is the number of threads
//! per process"* and *"we only used square process grids"*. Edison nodes
//! have two 12-core sockets; the default configuration pins one MPI process
//! per socket with `t = 12` OpenMP threads, except at 24 cores where a 2×2
//! grid of 6-thread processes is used.

/// A square 2D process grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcGrid {
    /// Grid rows (`p_r`).
    pub pr: usize,
    /// Grid columns (`p_c`). Always equals `pr` (paper: CombBLAS supports
    /// only square grids).
    pub pc: usize,
}

impl ProcGrid {
    /// A `dim × dim` square grid.
    pub fn square(dim: usize) -> Self {
        assert!(dim > 0);
        Self { pr: dim, pc: dim }
    }

    /// Total process count `p = pr · pc`.
    #[inline]
    pub fn p(&self) -> usize {
        self.pr * self.pc
    }

    /// Linear rank of grid position `(i, j)` (row-major).
    #[inline]
    pub fn rank(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.pr && j < self.pc);
        i * self.pc + j
    }
}

/// A simulated machine allocation: total cores and the hybrid MPI/OpenMP
/// split.
///
/// # Example
///
/// ```
/// use mcm_bsp::MachineConfig;
///
/// // The paper's 972-core configuration: 9x9 grid, 12 threads/process.
/// let cfg = MachineConfig::from_cores(972, 12).unwrap();
/// assert_eq!(cfg.grid.pr, 9);
/// assert_eq!(cfg.threads_per_process, 12);
/// assert_eq!(cfg.cores(), 972);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Square process grid.
    pub grid: ProcGrid,
    /// Threads per process (the paper's OpenMP threads; our mcm-par stand-in).
    pub threads_per_process: usize,
}

impl MachineConfig {
    /// Explicit hybrid configuration: a `dim × dim` grid of processes, each
    /// with `threads` threads. Total cores = `dim² · threads`.
    pub fn hybrid(dim: usize, threads: usize) -> Self {
        assert!(threads > 0);
        Self { grid: ProcGrid::square(dim), threads_per_process: threads }
    }

    /// Flat MPI: one thread per process (Fig. 7's non-threaded baseline).
    pub fn flat(dim: usize) -> Self {
        Self::hybrid(dim, 1)
    }

    /// The paper's standard allocation for a given core count: the largest
    /// square grid of ≤`max_threads`-thread processes that uses exactly
    /// `cores` cores, preferring more threads per process (§V-A).
    ///
    /// Examples with `max_threads = 12`: 24 cores → 2×2 grid × 6 threads;
    /// 48 → 2×2 × 12; 108 → 3×3 × 12; 972 → 9×9 × 12.
    ///
    /// Returns `None` when no `dim² · t = cores` decomposition exists with
    /// `1 ≤ t ≤ max_threads`.
    pub fn from_cores(cores: usize, max_threads: usize) -> Option<Self> {
        for t in (1..=max_threads.min(cores)).rev() {
            if !cores.is_multiple_of(t) {
                continue;
            }
            let p = cores / t;
            let dim = (p as f64).sqrt().round() as usize;
            if dim > 0 && dim * dim == p {
                return Some(Self::hybrid(dim, t));
            }
        }
        None
    }

    /// Total core count of the allocation.
    #[inline]
    pub fn cores(&self) -> usize {
        self.grid.p() * self.threads_per_process
    }

    /// Process count `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.grid.p()
    }

    /// The paper's Fig. 4/5/6 sweep: core counts `dim² · 12` for grid
    /// dimensions 2, 3, 4, ... up to (and including) the first configuration
    /// with at least `max_cores` cores, starting with the single-node 24-core
    /// (2×2 × 6) point.
    pub fn paper_sweep(max_cores: usize) -> Vec<Self> {
        let mut v = vec![Self::hybrid(2, 6)]; // 24 cores, the 1-node baseline
        let mut dim = 2;
        loop {
            let cfg = Self::hybrid(dim, 12);
            v.push(cfg);
            if cfg.cores() >= max_cores {
                break;
            }
            dim += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ranks_are_row_major() {
        let g = ProcGrid::square(3);
        assert_eq!(g.p(), 9);
        assert_eq!(g.rank(0, 0), 0);
        assert_eq!(g.rank(1, 2), 5);
        assert_eq!(g.rank(2, 2), 8);
    }

    #[test]
    fn from_cores_matches_paper_configs() {
        let c24 = MachineConfig::from_cores(24, 12).unwrap();
        assert_eq!((c24.grid.pr, c24.threads_per_process), (2, 6));
        let c48 = MachineConfig::from_cores(48, 12).unwrap();
        assert_eq!((c48.grid.pr, c48.threads_per_process), (2, 12));
        let c972 = MachineConfig::from_cores(972, 12).unwrap();
        assert_eq!((c972.grid.pr, c972.threads_per_process), (9, 12));
        let c2028 = MachineConfig::from_cores(2028, 12).unwrap();
        assert_eq!((c2028.grid.pr, c2028.threads_per_process), (13, 12));
    }

    #[test]
    fn from_cores_rejects_impossible() {
        assert!(MachineConfig::from_cores(7, 1).is_none());
    }

    #[test]
    fn flat_uses_one_thread() {
        let c = MachineConfig::flat(4);
        assert_eq!(c.threads_per_process, 1);
        assert_eq!(c.cores(), 16);
        assert_eq!(c.p(), 16);
    }

    #[test]
    fn paper_sweep_starts_at_one_node() {
        let sweep = MachineConfig::paper_sweep(2000);
        assert_eq!(sweep[0].cores(), 24);
        assert_eq!(sweep[1].cores(), 48);
        assert!(sweep.last().unwrap().cores() >= 2000);
        // Monotone increasing core counts.
        assert!(sweep.windows(2).all(|w| w[0].cores() < w[1].cores()));
    }
}
