//! Per-kernel modeled-time accounting.
//!
//! Fig. 5 of the paper breaks MCM-DIST runtime into SpMV, Invert, and other
//! kernels; these timers accumulate modeled seconds per category so the
//! breakdown can be regenerated exactly.

/// The kernel categories of the paper's runtime breakdown (Fig. 5), plus the
/// centralized gather/scatter baseline of §VI-E.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Semiring SpMSpV (Step 1): expand + local multiply + fold.
    SpMV,
    /// INVERT (Steps 5, 7 and the level-parallel augmentation).
    Invert,
    /// PRUNE (Step 6).
    Prune,
    /// Local SELECT/SET/IND work (Steps 2–4).
    Select,
    /// Augmentation (Algorithm 3 or 4).
    Augment,
    /// Maximal-matching initialization (greedy / Karp–Sipser / mindegree).
    Init,
    /// Gather/scatter of the centralized shared-memory baseline (Fig. 9).
    Gather,
    /// Everything else (frontier emptiness checks, bookkeeping).
    Other,
}

impl Kernel {
    /// All categories, in breakdown-report order.
    pub const ALL: [Kernel; 8] = [
        Kernel::SpMV,
        Kernel::Invert,
        Kernel::Prune,
        Kernel::Select,
        Kernel::Augment,
        Kernel::Init,
        Kernel::Gather,
        Kernel::Other,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::SpMV => "SpMV",
            Kernel::Invert => "Invert",
            Kernel::Prune => "Prune",
            Kernel::Select => "Select",
            Kernel::Augment => "Augment",
            Kernel::Init => "Init",
            Kernel::Gather => "Gather",
            Kernel::Other => "Other",
        }
    }

    fn index(&self) -> usize {
        match self {
            Kernel::SpMV => 0,
            Kernel::Invert => 1,
            Kernel::Prune => 2,
            Kernel::Select => 3,
            Kernel::Augment => 4,
            Kernel::Init => 5,
            Kernel::Gather => 6,
            Kernel::Other => 7,
        }
    }
}

/// Accumulated modeled time and call counts per kernel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timers {
    seconds: [f64; 8],
    calls: [u64; 8],
}

impl Timers {
    /// Fresh, empty timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` of modeled time to `kernel` and counts one call.
    #[inline]
    pub fn charge(&mut self, kernel: Kernel, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.seconds[kernel.index()] += seconds;
        self.calls[kernel.index()] += 1;
    }

    /// Modeled seconds accumulated for `kernel`.
    #[inline]
    pub fn seconds(&self, kernel: Kernel) -> f64 {
        self.seconds[kernel.index()]
    }

    /// Number of charges recorded for `kernel`.
    #[inline]
    pub fn calls(&self, kernel: Kernel) -> u64 {
        self.calls[kernel.index()]
    }

    /// Total modeled seconds across all kernels.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Returns `self - earlier` (for timing a region: snapshot, run, diff).
    pub fn since(&self, earlier: &Timers) -> Timers {
        let mut out = Timers::default();
        for k in 0..8 {
            out.seconds[k] = self.seconds[k] - earlier.seconds[k];
            out.calls[k] = self.calls[k] - earlier.calls[k];
        }
        out
    }

    /// `(kernel, seconds, calls)` rows for every category with activity.
    pub fn breakdown(&self) -> Vec<(Kernel, f64, u64)> {
        Kernel::ALL
            .iter()
            .filter(|k| self.calls(**k) > 0 || self.seconds(**k) > 0.0)
            .map(|&k| (k, self.seconds(k), self.calls(k)))
            .collect()
    }
}

impl std::fmt::Display for Timers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<8} {:>12} {:>8}", "kernel", "seconds", "calls")?;
        for (k, s, c) in self.breakdown() {
            writeln!(f, "{:<8} {:>12.6} {:>8}", k.name(), s, c)?;
        }
        write!(f, "{:<8} {:>12.6}", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut t = Timers::new();
        t.charge(Kernel::SpMV, 1.0);
        t.charge(Kernel::SpMV, 0.5);
        t.charge(Kernel::Invert, 0.25);
        assert_eq!(t.seconds(Kernel::SpMV), 1.5);
        assert_eq!(t.calls(Kernel::SpMV), 2);
        assert_eq!(t.total(), 1.75);
    }

    #[test]
    fn since_diffs() {
        let mut t = Timers::new();
        t.charge(Kernel::Prune, 1.0);
        let snap = t.clone();
        t.charge(Kernel::Prune, 2.0);
        t.charge(Kernel::Augment, 3.0);
        let d = t.since(&snap);
        assert_eq!(d.seconds(Kernel::Prune), 2.0);
        assert_eq!(d.seconds(Kernel::Augment), 3.0);
        assert_eq!(d.calls(Kernel::Prune), 1);
    }

    #[test]
    fn breakdown_skips_idle_kernels() {
        let mut t = Timers::new();
        t.charge(Kernel::Init, 0.1);
        let rows = t.breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Kernel::Init);
    }

    #[test]
    fn display_renders() {
        let mut t = Timers::new();
        t.charge(Kernel::SpMV, 0.125);
        let s = format!("{t}");
        assert!(s.contains("SpMV"));
        assert!(s.contains("total"));
    }
}
