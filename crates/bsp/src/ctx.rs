//! The distributed execution context: grid + cost model + timers.

use crate::collectives::{max_count, per_rank_counts};
use crate::cost::CostModel;
use crate::machine::MachineConfig;
use crate::sched::Schedule;
use crate::timers::{Kernel, Timers};
use mcm_sparse::SpVec;

/// Per-collective bytes/calls metrics, recorded at the accounting choke
/// point both backends share (the engine charges its observed volumes
/// through the same helpers). `words` is the *charged* volume: the
/// bottleneck rank for alltoallv, the replicated total for allgather —
/// i.e. the quantity the α–β model prices, 8 bytes per word. No-op unless
/// metrics are enabled.
#[inline]
fn record_collective(op: &'static str, kernel: Kernel, words: u64) {
    if mcm_obs::metrics_enabled() {
        let labels = [("op", op), ("kernel", kernel.name())];
        mcm_obs::counter_add("mcm_comm_calls_total", &labels, 1);
        mcm_obs::counter_add("mcm_comm_bytes_total", &labels, words * 8);
    }
}

/// Everything a distributed kernel needs to execute and account for itself:
/// the simulated machine, the α–β–γ cost model, and per-kernel timers.
///
/// One `DistCtx` corresponds to one simulated job allocation. Kernels charge
/// modeled time through the `charge_*` helpers; `timers` can be snapshotted
/// and diffed to time a region (see [`Timers::since`]).
///
/// ## Work scaling
///
/// The Table II stand-ins are 2–3 orders of magnitude smaller than the
/// paper's matrices, while the cost model's latency α is a *physical*
/// machine constant. Run as-is, latency would swamp the shrunken per-process
/// compute and no configuration would ever scale. `work_scale` restores the
/// paper-scale balance: each simulated edge/vertex stands for `work_scale`
/// paper-scale ones, so **compute (γ) and bandwidth (β·words) terms of
/// graph-data operations are multiplied by it**, while **latency terms and
/// scalar control traffic (the allreduce emptiness checks) are not** —
/// message counts do not grow with matrix size. The figure harnesses set
/// `work_scale = paper_nnz / standin_nnz` per matrix (DESIGN.md §2).
#[derive(Clone, Debug)]
pub struct DistCtx {
    /// The simulated allocation (grid shape and threads per process).
    pub machine: MachineConfig,
    /// Cost parameters.
    pub cost: CostModel,
    /// Accumulated modeled time per kernel.
    pub timers: Timers,
    /// Paper-scale multiplier for compute and graph-data bandwidth (≥ 1.0
    /// in the figure harnesses; 1.0 = charge the stand-in at face value).
    pub work_scale: f64,
    /// Schedule perturbation for the simtest harness: when set, kernels
    /// with order freedom (path-parallel augmentation's RMA epochs) execute
    /// under seed-chosen adversarial interleavings instead of program
    /// order. `None` (the default) is the friendly fixed schedule.
    pub sched: Option<Schedule>,
}

impl DistCtx {
    /// A context for `machine` using Edison-calibrated costs, with β
    /// adjusted for node bandwidth sharing: the calibration baseline is one
    /// process per 12-core socket (t = 12); running more processes per
    /// socket divides each one's share of the injection bandwidth, so
    /// `β_eff = β · 12/t`. This is what makes flat MPI lose to hybrid in
    /// Fig. 7 at *every* core count, as the paper measures.
    pub fn new(machine: MachineConfig) -> Self {
        let mut cost = CostModel::edison();
        cost.beta *= (12.0 / machine.threads_per_process as f64).max(1.0);
        Self { machine, cost, timers: Timers::new(), work_scale: 1.0, sched: None }
    }

    /// A context with an explicit cost model.
    pub fn with_cost(machine: MachineConfig, cost: CostModel) -> Self {
        Self { machine, cost, timers: Timers::new(), work_scale: 1.0, sched: None }
    }

    /// Sets the paper-scale work multiplier (see the type docs).
    pub fn with_work_scale(mut self, work_scale: f64) -> Self {
        assert!(work_scale > 0.0 && work_scale.is_finite());
        self.work_scale = work_scale;
        self
    }

    /// Installs a simtest schedule perturbation (see [`crate::sched`]).
    pub fn with_schedule(mut self, sched: Schedule) -> Self {
        self.sched = Some(sched);
        self
    }

    /// A single-process context (serial semantics, zero communication cost).
    pub fn serial() -> Self {
        Self::with_cost(MachineConfig::hybrid(1, 1), CostModel::free())
    }

    /// Process count `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.machine.p()
    }

    /// Threads per process `t`.
    #[inline]
    pub fn threads(&self) -> usize {
        self.machine.threads_per_process
    }

    /// Charges local computation: the *bottleneck* process performs
    /// `max_flops` elementary ops (work-scaled) with `t`-way intra-process
    /// threading.
    #[inline]
    pub fn charge_compute(&mut self, kernel: Kernel, max_flops: u64) {
        let dt =
            self.cost.gamma * max_flops as f64 * self.work_scale / self.threads().max(1) as f64;
        self.timers.charge(kernel, dt);
    }

    /// Charges streaming local computation (contiguous sweeps — the
    /// SELECT/SET/IND family) at the sequential-access rate
    /// [`CostModel::gamma_stream`], work-scaled and threaded like
    /// [`DistCtx::charge_compute`].
    #[inline]
    pub fn charge_compute_stream(&mut self, kernel: Kernel, max_flops: u64) {
        let dt = self.cost.gamma_stream() * max_flops as f64 * self.work_scale
            / self.threads().max(1) as f64;
        self.timers.charge(kernel, dt);
    }

    /// Charges an allgather of graph data over `g` ranks replicating
    /// `total_words` (work-scaled).
    #[inline]
    pub fn charge_allgather(&mut self, kernel: Kernel, g: usize, total_words: u64) {
        let dt = self.cost.allgather(g, self.scaled(total_words));
        self.timers.charge(kernel, dt);
        record_collective("allgather", kernel, total_words);
    }

    /// Charges a personalized all-to-all of graph data over `g` ranks with
    /// bottleneck volume `max_words` (work-scaled).
    #[inline]
    pub fn charge_alltoallv(&mut self, kernel: Kernel, g: usize, max_words: u64) {
        let dt = self.cost.alltoallv(g, self.scaled(max_words));
        self.timers.charge(kernel, dt);
        record_collective("alltoallv", kernel, max_words);
    }

    /// Charges a root gather of graph data (`total_words`, work-scaled) over
    /// all `p` ranks (the §VI-E centralization baseline).
    #[inline]
    pub fn charge_gather(&mut self, kernel: Kernel, total_words: u64) -> f64 {
        let dt = self.cost.gather(self.p(), self.scaled(total_words));
        self.timers.charge(kernel, dt);
        record_collective("gather", kernel, total_words);
        dt
    }

    /// Charges a root scatter of graph data (`total_words`, work-scaled).
    #[inline]
    pub fn charge_scatter(&mut self, kernel: Kernel, total_words: u64) -> f64 {
        let dt = self.cost.scatter(self.p(), self.scaled(total_words));
        self.timers.charge(kernel, dt);
        record_collective("scatter", kernel, total_words);
        dt
    }

    /// Charges an allreduce of `words` of *control data* per rank over all
    /// `p` processes (e.g. the `f ≠ φ` emptiness checks of Algorithms 1–3).
    /// Control traffic does not grow with the matrix, so it is NOT
    /// work-scaled.
    #[inline]
    pub fn charge_allreduce(&mut self, kernel: Kernel, words: u64) {
        let dt = self.cost.allreduce(self.p(), words);
        self.timers.charge(kernel, dt);
        record_collective("allreduce", kernel, words);
    }

    /// Charges a broadcast of `words` of graph data (work-scaled) from one
    /// root over all `p` ranks. MCM-DIST itself never broadcasts; this is
    /// the accounting hook behind [`crate::comm::Communicator::bcast`].
    #[inline]
    pub fn charge_bcast(&mut self, kernel: Kernel, words: u64) {
        let dt = self.cost.bcast(self.p(), self.scaled(words));
        self.timers.charge(kernel, dt);
        record_collective("bcast", kernel, words);
    }

    /// Applies the work scale to a graph-data word count.
    #[inline]
    fn scaled(&self, words: u64) -> u64 {
        (words as f64 * self.work_scale) as u64
    }

    /// Charges the INVERT communication pattern for a sparse vector `x`
    /// whose entries are routed value→owner over all `p` ranks: an
    /// alltoallv whose bottleneck volume is `pair_words · max(send, recv)`
    /// where send/recv counts come from the actual entry placement.
    ///
    /// `dest_of` maps each entry to its destination index in `0..dest_len`.
    pub fn charge_invert_route<T>(
        &mut self,
        kernel: Kernel,
        x: &SpVec<T>,
        dest_len: usize,
        dest_of: impl Fn(&T) -> u32,
    ) {
        let p = self.p();
        let send = per_rank_counts(x, p);
        let recv = crate::collectives::per_rank_index_counts(
            dest_len,
            p,
            x.iter().map(|(_, v)| dest_of(v)),
        );
        // Two words per routed pair (index + value).
        let max_words = 2 * max_count(&send).max(max_count(&recv));
        self.charge_alltoallv(kernel, p, max_words);
        // Local packing/unpacking on the bottleneck rank (streaming sweeps).
        let local = max_count(&send) + max_count(&recv);
        self.charge_compute_stream(kernel, local);
    }

    /// Resets the timers, keeping machine and cost.
    pub fn reset_timers(&mut self) {
        self.timers.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_charges_no_comm() {
        let mut ctx = DistCtx::serial();
        ctx.charge_allgather(Kernel::SpMV, 1, 1000);
        ctx.charge_alltoallv(Kernel::Invert, 1, 1000);
        ctx.charge_allreduce(Kernel::Other, 1);
        assert_eq!(ctx.timers.total(), 0.0);
        // calls are still recorded
        assert_eq!(ctx.timers.calls(Kernel::SpMV), 1);
    }

    #[test]
    fn compute_is_divided_by_threads() {
        let cost = CostModel { alpha: 0.0, alpha_soft: 0.0, beta: 0.0, gamma: 1.0 };
        let mut ctx = DistCtx::with_cost(MachineConfig::hybrid(1, 4), cost);
        ctx.charge_compute(Kernel::SpMV, 100);
        assert!((ctx.timers.seconds(Kernel::SpMV) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn work_scale_multiplies_compute_and_bandwidth_not_latency() {
        let cost = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 1.0, gamma: 1.0 };
        let mut ctx = DistCtx::with_cost(MachineConfig::hybrid(2, 1), cost).with_work_scale(10.0);
        ctx.charge_compute(Kernel::SpMV, 5);
        assert!((ctx.timers.seconds(Kernel::SpMV) - 50.0).abs() < 1e-9);
        ctx.charge_allgather(Kernel::Prune, 4, 3);
        // log2(4)·α + 30·β = 2 + 30
        assert!((ctx.timers.seconds(Kernel::Prune) - 32.0).abs() < 1e-9);
        // Control allreduce is NOT scaled: 2·log2(4)·α + 2·1·β = 4 + 2.
        ctx.charge_allreduce(Kernel::Other, 1);
        assert!((ctx.timers.seconds(Kernel::Other) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn invert_route_uses_bottleneck_volume() {
        let cost = CostModel { alpha: 0.0, alpha_soft: 0.0, beta: 1.0, gamma: 0.0 };
        let mut ctx = DistCtx::with_cost(MachineConfig::hybrid(2, 1), cost); // p = 4
                                                                             // 4 entries, all destined to index 0 → recv bottleneck = 4 at rank 0.
        let x = SpVec::from_pairs(8, vec![(0, 0u32), (2, 0), (4, 0), (6, 0)]);
        ctx.charge_invert_route(Kernel::Invert, &x, 8, |&v| v);
        // send max = 1 per rank (entries spread: ranks own 2 idx each), recv max = 4
        // → max_words = 8 → beta cost 8.0
        assert!((ctx.timers.seconds(Kernel::Invert) - 8.0).abs() < 1e-12);
    }
}
