//! # mcm-bsp — distributed-memory runtime simulator
//!
//! The paper runs on a Cray XC30 with MPI + OpenMP. Rust's MPI bindings are
//! thin and its RMA support weak (the calibration band for this
//! reproduction), so this crate substitutes the *machine*: a deterministic
//! bulk-synchronous simulator of a 2D `p_r × p_c` process grid.
//!
//! Three ideas (see DESIGN.md §2 and §7):
//!
//! 1. **Real data, simulated placement.** Matrices are physically split into
//!    the same 2D blocks CombBLAS would use ([`DistMatrix`]), and every
//!    kernel executes per-block exactly the local computation a real rank
//!    would run (parallelized with mcm-par for wall-clock speed, standing in
//!    for the paper's per-socket OpenMP threading). Results are bit-real, so
//!    correctness of the matching algorithms is fully testable.
//! 2. **α–β–γ cost model.** Every communication step charges modeled time
//!    from the same latency/bandwidth formulas the paper's §IV-B analysis
//!    uses (ring allgather, personalized all-to-all, RMA triplets), and every
//!    local kernel charges `γ · flops / t` where `t` is the simulated
//!    threads-per-process. A superstep's modeled elapsed time is the *maximum
//!    over ranks*, as on a real bulk-synchronous machine.
//! 3. **Per-kernel timers.** Modeled time accrues into [`Kernel`] categories
//!    (SpMV, Invert, Prune, Augment, ...) so the runtime-breakdown figure
//!    (Fig. 5) can be regenerated.

// Index loops over parallel arrays are the clearest style in these kernels.
#![allow(clippy::needless_range_loop)]
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod ctx;
pub mod distmat;
pub mod engine;
pub mod machine;
pub mod rma;
pub mod sched;
pub mod shared;
pub mod timers;

pub use collectives::{balanced_owner, per_rank_counts};
pub use comm::{AtomicWin, BackendKind, Communicator, EngineComm, ReduceOp, RmaTask, RmaWin};
pub use cost::CostModel;
pub use ctx::DistCtx;
pub use distmat::{DistMatrix, SpmvPlan};
pub use machine::{MachineConfig, ProcGrid};
pub use rma::{RmaTally, RmaWindow, TalliedWin};
pub use sched::{FaultPlan, SchedConfig, Schedule, SimWindow};
pub use shared::SharedComm;
pub use timers::{Kernel, Timers};
