//! Distribution helpers for vectors spread across all `p` ranks.
//!
//! CombBLAS distributes vectors over the whole process grid in balanced
//! blocks: rank `k` owns indices `[offsets[k], offsets[k+1])` where the
//! first `n mod p` ranks own one extra element. The matching primitives need
//! two queries: *who owns index i* (to route INVERT traffic) and *how many
//! frontier entries live on each rank* (to find the max-loaded rank for the
//! bulk-synchronous time model).

use mcm_sparse::{SpVec, Vidx};

/// Which of `parts` balanced blocks over `0..n` owns `idx`. O(1).
///
/// Equivalent to `mcm_sparse::triples::block_owner(&block_offsets(n, parts), idx)`
/// without materializing the offsets.
#[inline]
pub fn balanced_owner(n: usize, parts: usize, idx: usize) -> usize {
    debug_assert!(idx < n && parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let big_span = (base + 1) * extra; // indices owned by the `extra` bigger blocks
    if idx < big_span {
        idx / (base + 1)
    } else {
        debug_assert!(base > 0);
        extra + (idx - big_span) / base
    }
}

/// Per-rank explicit-entry counts of a sparse vector distributed in balanced
/// blocks over `p` ranks. The maximum entry is the bottleneck rank's load.
pub fn per_rank_counts<T>(x: &SpVec<T>, p: usize) -> Vec<u64> {
    let n = x.len();
    let mut counts = vec![0u64; p];
    for (i, _) in x.iter() {
        counts[balanced_owner(n, p, i as usize)] += 1;
    }
    counts
}

/// Per-rank counts of an arbitrary index multiset over `0..n` (e.g. the
/// *destination* ranks of INVERT traffic, where entry values become indices).
pub fn per_rank_index_counts(n: usize, p: usize, indices: impl Iterator<Item = Vidx>) -> Vec<u64> {
    let mut counts = vec![0u64; p];
    for i in indices {
        counts[balanced_owner(n, p, i as usize)] += 1;
    }
    counts
}

/// Maximum of a count vector (0 for empty).
#[inline]
pub fn max_count(counts: &[u64]) -> u64 {
    counts.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::triples::{block_offsets, block_owner};

    #[test]
    fn balanced_owner_matches_block_offsets() {
        for (n, p) in [(10usize, 3usize), (9, 3), (17, 4), (100, 7), (5, 5), (8, 8)] {
            let off = block_offsets(n, p);
            for idx in 0..n {
                assert_eq!(
                    balanced_owner(n, p, idx),
                    block_owner(&off, idx),
                    "n={n} p={p} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn per_rank_counts_sum_to_nnz() {
        let x = SpVec::from_pairs(10, vec![(0, ()), (3, ()), (4, ()), (9, ())]);
        let c = per_rank_counts(&x, 3);
        // blocks: [0,4), [4,7), [7,10) → counts 2, 1, 1
        assert_eq!(c, vec![2, 1, 1]);
        assert_eq!(c.iter().sum::<u64>() as usize, x.nnz());
    }

    #[test]
    fn index_counts_route_by_value() {
        let dests = [0u32, 0, 9, 5];
        let c = per_rank_index_counts(10, 2, dests.iter().copied());
        // blocks: [0,5), [5,10) → counts 2, 2
        assert_eq!(c, vec![2, 2]);
    }

    #[test]
    fn max_count_handles_empty() {
        assert_eq!(max_count(&[]), 0);
        assert_eq!(max_count(&[1, 5, 2]), 5);
    }
}
