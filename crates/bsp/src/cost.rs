//! The α–β–γ communication/computation cost model.
//!
//! §IV-B of the paper: *"The cost of communicating a length m message is
//! α + βm where α is the latency and β is the inverse bandwidth ... an
//! algorithm that performs F arithmetic operations, sends S messages, and
//! moves W words takes T = F + αS + βW time."*
//!
//! All times are in seconds; a *word* is 8 bytes (one `Vidx` index plus
//! padding, or one `(parent, root)` half). Collective formulas follow the
//! algorithms the paper cites: ring allgather [28] and personalized
//! all-to-all (alltoallv) [27].

/// Machine cost parameters.
///
/// # Example
///
/// ```
/// use mcm_bsp::CostModel;
///
/// let c = CostModel::edison();
/// // An allgather of 1k words over 64 ranks is latency + bandwidth:
/// let t = c.allgather(64, 1024);
/// assert!(t > 0.0 && t < 1e-3);
/// // One-sided RMA ops cost α + β each (the paper's 3(α+β) per path level).
/// assert!(c.rma_op() < 2e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Point-to-point message latency (seconds per message).
    pub alpha: f64,
    /// Per-rank software overhead of *personalized* collectives (seconds per
    /// participating rank): every rank of an alltoallv must set up, pack,
    /// and unpack one buffer per peer, which is linear in the communicator
    /// size even when the network latency combines logarithmically. This
    /// term is what makes the paper's INVERT `αp` cost — and the Fig. 7
    /// flat-MPI penalty — real.
    pub alpha_soft: f64,
    /// Inverse bandwidth (seconds per 8-byte word).
    pub beta: f64,
    /// Cost of one elementary local operation — an edge traversal, a
    /// sparse-accumulator update — on a single core (seconds per op).
    pub gamma: f64,
}

impl CostModel {
    /// Parameters calibrated to NERSC Edison (Cray XC30, Aries dragonfly):
    /// ~1.5 µs MPI latency, ~0.1 µs per-rank collective software overhead,
    /// ~8 GB/s effective per-socket bandwidth (β = 8 B / 8 GB/s = 1 ns/word;
    /// see [`crate::DistCtx`] for node-sharing adjustment), ~8 ns per
    /// irregular edge traversal (≈125M traversed edges/s per core, typical
    /// for memory-bound graph kernels on 2.4 GHz Ivy Bridge).
    pub fn edison() -> Self {
        Self { alpha: 1.5e-6, alpha_soft: 0.1e-6, beta: 1.0e-9, gamma: 8.0e-9 }
    }

    /// A zero-cost model (useful in unit tests that only check data results).
    pub fn free() -> Self {
        Self { alpha: 0.0, alpha_soft: 0.0, beta: 0.0, gamma: 0.0 }
    }

    /// Local computation of `flops` elementary ops on one process using `t`
    /// threads (the paper's kernels are "fully multithreaded using OpenMP").
    #[inline]
    pub fn compute(&self, flops: u64, threads: usize) -> f64 {
        self.gamma * flops as f64 / threads.max(1) as f64
    }

    /// Per-element cost of *streaming* local ops (SELECT/SET/IND sweeps over
    /// contiguous index/value pairs): sequential access runs ~8× faster than
    /// the random-access edge traversals γ models.
    #[inline]
    pub fn gamma_stream(&self) -> f64 {
        self.gamma / 8.0
    }

    /// Allgather over `g` ranks where `total_words` end up replicated on
    /// every rank: `⌈log₂ g⌉·α + total_words·β` per rank.
    ///
    /// Latency is logarithmic (recursive doubling / Bruck): the paper's
    /// asymptotic analysis uses the linear-latency ring bound `(g−1)α`
    /// [28], but Cray MPI's combining algorithms deliver log-depth
    /// latency for the small frontier messages matching actually sends —
    /// using the worst-case bound would make latency dominate two orders
    /// of magnitude earlier than the paper's measured scaling shows.
    #[inline]
    pub fn allgather(&self, g: usize, total_words: u64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        (g as f64).log2().ceil() * self.alpha
            + g as f64 * self.alpha_soft
            + total_words as f64 * self.beta
    }

    /// Personalized all-to-all (alltoallv) over `g` ranks with at most
    /// `max_words` sent or received by any rank. Includes the preliminary
    /// count exchange the paper's AUGMENT analysis charges ("another
    /// personalized all-to-all to communicate the amount of data").
    /// Log-depth latency for the same reason as [`CostModel::allgather`].
    #[inline]
    pub fn alltoallv(&self, g: usize, max_words: u64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        2.0 * (g as f64).log2().ceil() * self.alpha
            + 2.0 * g as f64 * self.alpha_soft
            + max_words as f64 * self.beta
    }

    /// Gather of `total_words` onto a single root from `g` ranks
    /// (root-bound, bandwidth-dominated: the root must receive everything).
    #[inline]
    pub fn gather(&self, g: usize, total_words: u64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        (g as f64).log2().ceil() * self.alpha + total_words as f64 * self.beta
    }

    /// Scatter of `total_words` from a single root to `g` ranks.
    #[inline]
    pub fn scatter(&self, g: usize, total_words: u64) -> f64 {
        self.gather(g, total_words)
    }

    /// Allreduce of `words` per rank over `g` ranks (recursive doubling):
    /// `2·⌈log₂ g⌉·α + 2·words·β`.
    #[inline]
    pub fn allreduce(&self, g: usize, words: u64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        let lg = (g as f64).log2().ceil();
        2.0 * lg * self.alpha + 2.0 * words as f64 * self.beta
    }

    /// Broadcast of `words` from one root to `g` ranks (binomial tree):
    /// `⌈log₂ g⌉·α + words·β`. Not used by MCM-DIST itself — the paper's
    /// pipeline needs no broadcast — but part of the backend-agnostic
    /// [`crate::comm::Communicator`] surface for service-layer callers.
    #[inline]
    pub fn bcast(&self, g: usize, words: u64) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        (g as f64).log2().ceil() * self.alpha + words as f64 * self.beta
    }

    /// One one-sided RMA operation (`MPI_Get` / `MPI_Put` /
    /// `MPI_Fetch_and_op`) moving a single word: `α + β` (§IV-B: "the
    /// communication cost per processor per iteration is 3(α+β)" for the
    /// three calls of a path-parallel augmentation step).
    #[inline]
    pub fn rma_op(&self) -> f64 {
        self.alpha + self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        let c = CostModel::edison();
        assert_eq!(c.allgather(1, 1000), 0.0);
        assert_eq!(c.alltoallv(1, 1000), 0.0);
        assert_eq!(c.allreduce(1, 10), 0.0);
        assert_eq!(c.bcast(1, 1000), 0.0);
    }

    #[test]
    fn costs_scale_with_terms() {
        let c = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 0.5, gamma: 0.1 };
        // log2(4) = 2 latency steps.
        assert!((c.allgather(4, 10) - (2.0 + 5.0)).abs() < 1e-12);
        assert!((c.alltoallv(4, 10) - (4.0 + 5.0)).abs() < 1e-12);
        assert!((c.allreduce(4, 2) - (4.0 + 2.0)).abs() < 1e-12);
        assert!((c.bcast(4, 10) - (2.0 + 5.0)).abs() < 1e-12);
        assert!((c.compute(100, 4) - 2.5).abs() < 1e-12);
        assert!((c.rma_op() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn latency_grows_logarithmically() {
        let c = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 0.0, gamma: 0.0 };
        // Quadrupling the ranks adds a constant 2 steps, not 3x the cost.
        assert!((c.allgather(64, 0) - 6.0).abs() < 1e-12);
        assert!((c.allgather(256, 0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn compute_guards_zero_threads() {
        let c = CostModel { alpha: 0.0, alpha_soft: 0.0, beta: 0.0, gamma: 1.0 };
        assert_eq!(c.compute(7, 0), 7.0);
    }

    #[test]
    fn edison_orders_of_magnitude() {
        let c = CostModel::edison();
        // Latency should dominate tiny messages, bandwidth large ones.
        assert!(c.alpha > 100.0 * c.beta);
        assert!(c.gamma > c.beta);
    }
}
