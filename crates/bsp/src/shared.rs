//! Shared-memory execution backend: collectives as shared-arena exchanges.
//!
//! The third [`Communicator`]: where the engine backend runs `p` real ranks
//! that ship message buffers through a thread-per-rank channel mesh,
//! [`SharedComm`] exploits the fact that on one node all "ranks" share an
//! address space — so a collective does not need channels, copies, or
//! per-message allocation at all. Each collective becomes a two-phase
//! exchange against shared state with precomputed per-rank offsets, closed
//! by an epoch barrier:
//!
//! * **SpMSpV (the hot path)** — the expand and fold halves are *fused with
//!   the communication epoch*. The generation-stamped sparse accumulator of
//!   [`mcm_sparse::workspace::SpmvWorkspace`] **is** the shared arena: row
//!   `i`'s slot is the destination rank's receive region for row `i`
//!   (logical block-row offsets are the precomputed per-rank offsets), and
//!   a logical rank's "message" — a partial-product entry bound for the
//!   fold — is written **directly into that region** instead of being
//!   materialized in a send buffer, shipped, merged, and sorted. The SPA's
//!   epoch stamp is the barrier: bumping the generation opens the next
//!   exchange in O(1), and a slot whose stamp predates the current epoch is
//!   *by definition* not yet written this epoch, which is exactly the
//!   visibility rule a barriered exchange provides. Zero copies through
//!   channels, zero per-message allocation, no post-exchange merge sort —
//!   the fold's duplicate resolution happens at write time, in ascending
//!   global column order, so results are bit-identical to the simulator
//!   and engine backends (grid independence). See
//!   [`mcm_sparse::workspace::SpmvWorkspace::spmspv_fused_into`].
//! * **alltoallv / allgatherv / allreduce / bcast** — in one address space
//!   the "exchange" phase of the two-phase protocol is the identity (the
//!   payload is already where the receiver can see it); what remains is the
//!   rank-offset transpose `sends[src][dst] → recvd[dst][src]`, which is a
//!   move of the existing buffers, not a copy. These delegate to the
//!   [`DistCtx`] routing (the same move-transpose) while the α–β–γ model
//!   charges the logical grid's volumes.
//! * **RMA epochs** — windows are plain vectors in the shared address
//!   space; an exposure epoch drives origin op-streams against them
//!   directly ([`SimWindow`] semantics), under the simtest [`Schedule`]'s
//!   adversarial interleaving when installed. The decision stream is the
//!   same one the simulator consumes, so replay seeds and trace-hash
//!   certificates remain valid across backends.
//!
//! ### Cost accounting
//!
//! `SharedComm::new(p, threads)` accounts a logical `√p × √p` grid with
//! `threads` workers per rank — every collective charges exactly what the
//! simulator charges for the same exchange, and the fused SpMSpV recovers
//! the per-logical-block expand/fold volumes in-line from its single
//! traversal (see [`FusedVolumes`](mcm_sparse::workspace::FusedVolumes)).
//! Modeled per-kernel times and call counts are therefore **identical** to
//! the simulator's at the same `p` and `t`; what changes is the wall-clock
//! cost of getting them, which is what `mcm-bench`'s `engine_e2e` measures.
//! Physical execution uses a single 1×1 block ([`Communicator::exec_grid`]),
//! the layout that makes the arena contiguous.

use crate::comm::{
    interleave_tasks, record_rma_epoch, BackendKind, Communicator, CountingWin, ReduceOp, RmaTask,
};
use crate::ctx::DistCtx;
use crate::distmat::{DistMatrix, SpmvPlan};
use crate::machine::MachineConfig;
use crate::sched::{FaultPlan, Schedule, SimWindow};
use crate::timers::Kernel;
use mcm_sparse::{DenseVec, SpVec, Vidx};

/// The shared-memory backend: logical `√p × √p` cost accounting over a
/// single-address-space execution where collectives are shared-arena
/// exchanges and SpMSpV is fused with its communication epoch.
///
/// # Example
///
/// ```
/// use mcm_bsp::comm::{Communicator, ReduceOp};
/// use mcm_bsp::shared::SharedComm;
/// use mcm_bsp::Kernel;
///
/// let mut shm = SharedComm::new(4, 1);
/// assert_eq!(shm.exec_grid(), (1, 1)); // physical: one block
/// assert_eq!(shm.p(), 4); // logical: 2×2 accounting
/// let total = shm.allreduce(Kernel::Other, &[1, 2, 3, 4], ReduceOp::Sum);
/// assert_eq!(total, 10);
/// ```
pub struct SharedComm {
    ctx: DistCtx,
}

impl SharedComm {
    /// A shared-memory backend accounting `p` logical ranks (must be a
    /// perfect square — the 2D grid) with `threads` workers per rank.
    pub fn new(p: usize, threads: usize) -> Self {
        let dim = (p as f64).sqrt().round() as usize;
        assert!(dim * dim == p && p >= 1, "shared backend needs a square rank count, got {p}");
        assert!(threads >= 1, "at least one worker thread per rank");
        Self { ctx: DistCtx::new(MachineConfig::hybrid(dim, threads)) }
    }

    /// Installs a simtest schedule: RMA epochs run under deterministic
    /// adversarial interleaving, consuming the same decision stream the
    /// simulator consumes (replay seeds and trace hashes carry over).
    pub fn with_schedule(mut self, sched: Schedule) -> Self {
        self.ctx.sched = Some(sched);
        self
    }
}

impl Communicator for SharedComm {
    fn kind(&self) -> BackendKind {
        BackendKind::Shared
    }

    fn ctx(&self) -> &DistCtx {
        &self.ctx
    }

    fn ctx_mut(&mut self) -> &mut DistCtx {
        &mut self.ctx
    }

    fn exec_grid(&self) -> (usize, usize) {
        (1, 1)
    }

    fn alltoallv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        sends: Vec<Vec<Vec<T>>>,
    ) -> Vec<Vec<Vec<T>>> {
        // One address space: the exchange is the rank-offset move-transpose
        // the simulator already performs — no copies, no channels. The
        // charge is the logical grid's bottleneck volume.
        self.ctx.alltoallv(kernel, words_per_elem, sends)
    }

    fn allgatherv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        contribs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        self.ctx.allgatherv(kernel, words_per_elem, contribs)
    }

    fn allreduce(&mut self, kernel: Kernel, per_rank: &[u64], op: ReduceOp) -> u64 {
        self.ctx.allreduce(kernel, per_rank, op)
    }

    fn bcast<T: Send + Clone>(&mut self, kernel: Kernel, root: usize, data: Vec<T>) -> Vec<T> {
        self.ctx.bcast(kernel, root, data)
    }

    fn spmspv<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv", kernel.name());
        let g = &self.ctx.machine.grid;
        let (lpr, lpc) = (g.pr, g.pc);
        a.spmspv_shared(&mut self.ctx, kernel, lpr, lpc, plan, x, mul, take_incoming)
    }

    fn spmspv_monoid<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv_monoid", kernel.name());
        let g = &self.ctx.machine.grid;
        let (lpr, lpc) = (g.pr, g.pc);
        a.spmspv_monoid_shared(&mut self.ctx, kernel, lpr, lpc, plan, x, mul, combine)
    }

    fn rma_epoch<W: RmaTask + Send>(
        &mut self,
        kernel: Kernel,
        wins: Vec<&mut DenseVec>,
        tasks: &mut [W],
    ) -> u64 {
        let _span = mcm_obs::kernel_span("rma_epoch", kernel.name());
        // Windows are plain shared vectors; the epoch drives origin streams
        // against them in place. Same decision stream as the simulator, so
        // adversarial arrival orders replay identically.
        match self.ctx.sched.take() {
            Some(mut sched) => {
                let (steps, ops) = {
                    let mut win = SimWindow::new(wins, sched.fault());
                    let mut cwin = CountingWin { inner: &mut win, ops: 0 };
                    let steps = interleave_tasks(&mut cwin, &mut sched, tasks);
                    (steps, cwin.ops)
                };
                self.ctx.sched = Some(sched);
                record_rma_epoch("shared", ops);
                steps
            }
            None => {
                let mut win = SimWindow::new(wins, FaultPlan::default());
                let mut cwin = CountingWin { inner: &mut win, ops: 0 };
                for t in tasks.iter_mut() {
                    while t.step(&mut cwin) {}
                }
                record_rma_epoch("shared", cwin.ops);
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::Triples;

    #[test]
    fn shared_collectives_match_simulator() {
        for p in [1usize, 4, 9] {
            let dim = (p as f64).sqrt() as usize;
            let sends: Vec<Vec<Vec<u32>>> = (0..p)
                .map(|src| (0..p).map(|dst| vec![(src * 10 + dst) as u32]).collect())
                .collect();
            let mut sim = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let mut shm = SharedComm::new(p, 1);
            assert_eq!(
                sim.alltoallv(Kernel::Invert, 2, sends.clone()),
                shm.alltoallv(Kernel::Invert, 2, sends),
                "p = {p}"
            );
            assert_eq!(
                sim.timers.seconds(Kernel::Invert),
                shm.ctx().timers.seconds(Kernel::Invert),
                "p = {p}: charges must match"
            );
        }
    }

    #[test]
    fn fused_spmspv_matches_simulator_charges_exactly() {
        // Same logical grid, different physical execution: the fused
        // single-block product must return the identical vector AND charge
        // the identical modeled time as the block-split simulator product.
        let t = Triples::from_edges(
            9,
            9,
            vec![
                (0, 0),
                (1, 0),
                (2, 4),
                (3, 2),
                (4, 4),
                (4, 7),
                (5, 1),
                (6, 8),
                (7, 5),
                (8, 8),
                (8, 0),
                (2, 2),
            ],
        );
        for p in [1usize, 4, 9] {
            let dim = (p as f64).sqrt() as usize;
            let mut sim = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let mut shm = SharedComm::new(p, 1);
            let a_sim = DistMatrix::with_grid(&t, dim, dim);
            let a_shm = DistMatrix::with_grid(&t, 1, 1);
            let x = SpVec::from_pairs(9, vec![(0, 0u32), (2, 2), (4, 4), (8, 8)]);
            let mut plan_sim = SpmvPlan::new();
            let mut plan_shm = SpmvPlan::new();
            let ys = sim.spmspv(
                &a_sim,
                Kernel::SpMV,
                &mut plan_sim,
                &x,
                |j, _| j,
                |acc: &Vidx, inc| inc < acc,
            );
            let yh = shm.spmspv(
                &a_shm,
                Kernel::SpMV,
                &mut plan_shm,
                &x,
                |j, _| j,
                |acc: &Vidx, inc| inc < acc,
            );
            assert_eq!(ys, yh, "p = {p}");
            assert_eq!(
                sim.timers.seconds(Kernel::SpMV),
                shm.ctx().timers.seconds(Kernel::SpMV),
                "p = {p}: fused volumes must reproduce the split execution's charges"
            );
            assert_eq!(
                sim.timers.calls(Kernel::SpMV),
                shm.ctx().timers.calls(Kernel::SpMV),
                "p = {p}"
            );
        }
    }
}
