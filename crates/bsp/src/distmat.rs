//! 2D block-distributed sparse matrices and the distributed SpMSpV.
//!
//! §IV-A of the paper: CombBLAS distributes an `n1 × n2` matrix over a
//! `p_r × p_c` grid; process `P(i,j)` stores submatrix `A_{i,j}` in DCSC.
//! The 2D SpMV has two communication phases [26]: **expand** (allgather of
//! frontier slices along each process *column*) and **fold** (personalized
//! all-to-all of partial products along each process *row*).
//!
//! The simulator executes the same plan: the frontier is sliced per block
//! column, each block runs the local semiring product — threads from
//! `mcm-par` stand in for both process-level and OpenMP parallelism — and
//! each block row merges its partials with the semiring "addition".
//! Communication is charged from the actual per-rank volumes.
//!
//! ## SpMSpV plans
//!
//! The MS-BFS hot loop calls the distributed product once per iteration per
//! phase. A [`SpmvPlan`] keeps one
//! [`SpmvWorkspace`](mcm_sparse::workspace::SpmvWorkspace) and one output
//! [`SpVec`] per block, plus the per-block-column frontier-slice buffers, so
//! every allocation made by the expand and local-multiply stages is reused
//! across iterations: in steady state an iteration's SpMSpV performs no
//! sparse-accumulator or slice allocation at all. [`DistMatrix::spmspv`]
//! and [`DistMatrix::spmspv_monoid`] remain as one-shot wrappers that build
//! a throwaway plan.
//!
//! Block-level and intra-block parallelism compose adaptively: with at
//! least as many blocks as worker threads the blocks themselves run in
//! parallel (serial kernel inside each); on small grids the blocks run in
//! sequence and each product uses the chunked intra-block parallel kernel,
//! whose output is bit-identical to the serial one.

use crate::comm::{Communicator, EngineComm};
use crate::ctx::DistCtx;
use crate::timers::Kernel;
use mcm_sparse::permute::Permutation;
use mcm_sparse::triples::{block_offsets, block_owner};
use mcm_sparse::workspace::{SpmvWorkspace, WorkspaceStats};
use mcm_sparse::{CscView, Dcsc, SpVec, Triples, Vidx};
use std::sync::Mutex;

/// Fold semantics of the engine-mesh product: semiring selection
/// (`spmspv`) or commutative-monoid accumulation (`spmspv_monoid`).
enum MeshFold<'f, U> {
    Select(&'f (dyn Fn(&U, &U) -> bool + Sync)),
    Monoid(&'f (dyn Fn(&mut U, U) + Sync)),
}

/// Wire format of the engine-mesh SpMSpV: expand payloads (block-local
/// column index + frontier value) and fold payloads (block-local row
/// index + partial product).
#[derive(Clone)]
enum Wire<T, U> {
    X(Vidx, T),
    Y(Vidx, U),
}

/// Per-rank outcome of one engine-mesh product session, carrying the
/// observed volumes the cost mirror charges from.
struct MeshOut<U> {
    entries: Vec<(Vidx, U)>,
    flops: u64,
    slice_nnz: u64,
    sent_pairs: u64,
    recv_pairs: u64,
}

/// Per-block reusable state of a [`SpmvPlan`].
#[derive(Debug)]
struct PlanBlock<U: Copy> {
    ws: SpmvWorkspace<U>,
    out: SpVec<U>,
}

impl<U: Copy> PlanBlock<U> {
    fn new() -> Self {
        Self { ws: SpmvWorkspace::new(), out: SpVec::new(0) }
    }
}

/// Reusable buffers for [`DistMatrix::spmspv_with_plan`] /
/// [`DistMatrix::spmspv_monoid_with_plan`]: one SpMSpV workspace and output
/// vector per grid block, plus the frontier-slice buffers of the expand
/// phase. Create once, pass to every distributed product against matrices
/// on the same grid — buffers grow to the high-water mark and are then
/// reused, so steady-state iterations allocate nothing in the kernel layer.
#[derive(Debug)]
pub struct SpmvPlan<T, U: Copy> {
    blocks: Vec<PlanBlock<U>>,
    slices: Vec<SpVec<T>>,
}

impl<T, U: Copy> Default for SpmvPlan<T, U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, U: Copy> SpmvPlan<T, U> {
    /// An empty plan; buffers materialize on first use.
    pub fn new() -> Self {
        Self { blocks: Vec::new(), slices: Vec::new() }
    }

    fn ensure(&mut self, nblocks: usize, pc: usize) {
        if self.blocks.len() < nblocks {
            self.blocks.resize_with(nblocks, PlanBlock::new);
        }
        if self.slices.len() < pc {
            self.slices.resize_with(pc, || SpVec::new(0));
        }
    }

    /// Aggregated workspace reuse counters over all blocks.
    pub fn stats(&self) -> WorkspaceStats {
        let mut total = WorkspaceStats::default();
        for b in &self.blocks {
            total.merge(&b.ws.stats);
        }
        total
    }
}

/// A sparse matrix distributed over a 2D process grid in DCSC blocks.
///
/// # Example
///
/// ```
/// use mcm_bsp::{DistCtx, DistMatrix, Kernel, MachineConfig};
/// use mcm_sparse::{SpVec, Triples};
///
/// let t = Triples::from_edges(4, 4, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
/// let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1)); // 2x2 grid
/// let a = DistMatrix::from_triples(&ctx, &t);
/// let x = SpVec::from_pairs(4, vec![(0, 0u32), (2, 2)]);
/// let y = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
/// assert_eq!(y.entries(), &[(0, 0), (2, 2)]);
/// assert!(ctx.timers.seconds(Kernel::SpMV) > 0.0); // modeled time accrued
/// ```
#[derive(Clone, Debug)]
pub struct DistMatrix {
    nrows: usize,
    ncols: usize,
    pr: usize,
    pc: usize,
    /// Global row index where each block row starts (`len == pr + 1`).
    row_off: Vec<usize>,
    /// Global column index where each block column starts (`len == pc + 1`).
    col_off: Vec<usize>,
    /// Row-major `pr × pc` DCSC blocks with block-local coordinates.
    blocks: Vec<Dcsc>,
    nnz: usize,
}

impl DistMatrix {
    /// Distributes `t` over the grid of `ctx` (balanced block distribution
    /// in both dimensions, as CombBLAS does).
    pub fn from_triples(ctx: &DistCtx, t: &Triples) -> Self {
        Self::with_grid(t, ctx.machine.grid.pr, ctx.machine.grid.pc)
    }

    /// Distributes `t` over an explicit `pr × pc` grid.
    pub fn with_grid(t: &Triples, pr: usize, pc: usize) -> Self {
        Self::with_grid_mapped(t, pr, pc, None, None, false)
    }

    /// Distributes `t` with the relabeling and transposition fused into the
    /// scatter: entry `(i, j)` lands as `(rowp(i), colp(j))`, swapped when
    /// `transpose` is set. Avoids materializing the permuted (and
    /// transposed) triple lists that `maximum_matching` previously cloned
    /// on every solve.
    pub fn from_triples_mapped(
        ctx: &DistCtx,
        t: &Triples,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
        transpose: bool,
    ) -> Self {
        Self::with_grid_mapped(t, ctx.machine.grid.pr, ctx.machine.grid.pc, rowp, colp, transpose)
    }

    /// Builds `A` and `Aᵀ` together from one scatter pass over `t` —
    /// permutation lookups and block routing are paid once for both
    /// orientations. Used by the matching pipeline, which needs the
    /// transpose for every row-proposing initializer.
    pub fn from_triples_mapped_pair(
        ctx: &DistCtx,
        t: &Triples,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
    ) -> (Self, Self) {
        let (pr, pc) = (ctx.machine.grid.pr, ctx.machine.grid.pc);
        Self::with_grid_mapped_pair(t, pr, pc, rowp, colp)
    }

    /// [`DistMatrix::from_triples_mapped_pair`] over an explicit grid.
    pub fn with_grid_mapped_pair(
        t: &Triples,
        pr: usize,
        pc: usize,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
    ) -> (Self, Self) {
        if pr == 1 && pc == 1 {
            // Single-block execution (the shared-memory backend): scatter A
            // once and derive Aᵀ by counting transpose over the compacted
            // nonzeros — cheaper than a second scatter of the raw edge
            // list, and bit-identical (transpose of a canonical DCSC is the
            // canonical DCSC of the swapped pairs).
            let a_block = if rowp.is_none() && colp.is_none() {
                Dcsc::from_unsorted_pairs(t.nrows(), t.ncols(), t.entries())
            } else {
                let mapped: Vec<(Vidx, Vidx)> = t
                    .entries()
                    .iter()
                    .map(|&(i, j)| (rowp.map_or(i, |p| p.apply(i)), colp.map_or(j, |p| p.apply(j))))
                    .collect();
                Dcsc::from_unsorted_pairs(t.nrows(), t.ncols(), &mapped)
            };
            let at_block = a_block.transposed();
            let (nnz, t_nnz) = (a_block.nnz(), at_block.nnz());
            let a = Self {
                nrows: t.nrows(),
                ncols: t.ncols(),
                pr: 1,
                pc: 1,
                row_off: vec![0, t.nrows()],
                col_off: vec![0, t.ncols()],
                blocks: vec![a_block],
                nnz,
            };
            let at = Self {
                nrows: t.ncols(),
                ncols: t.nrows(),
                pr: 1,
                pc: 1,
                row_off: vec![0, t.ncols()],
                col_off: vec![0, t.nrows()],
                blocks: vec![at_block],
                nnz: t_nnz,
            };
            return (a, at);
        }
        let row_off = block_offsets(t.nrows(), pr);
        let col_off = block_offsets(t.ncols(), pc);
        let t_row_off = block_offsets(t.ncols(), pr);
        let t_col_off = block_offsets(t.nrows(), pc);
        let cap = t.len() / (pr * pc) + 8;
        let mut parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(cap)).collect();
        let mut t_parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(cap)).collect();
        for &(i, j) in t.entries() {
            let pi = rowp.map_or(i, |p| p.apply(i));
            let pj = colp.map_or(j, |p| p.apply(j));
            let bi = block_owner(&row_off, pi as usize);
            let bj = block_owner(&col_off, pj as usize);
            parts[bi * pc + bj].push((pi - row_off[bi] as Vidx, pj - col_off[bj] as Vidx));
            let tbi = block_owner(&t_row_off, pj as usize);
            let tbj = block_owner(&t_col_off, pi as usize);
            t_parts[tbi * pc + tbj]
                .push((pj - t_row_off[tbi] as Vidx, pi - t_col_off[tbj] as Vidx));
        }
        let build = |off_r: &[usize], off_c: &[usize], parts: &[Vec<(Vidx, Vidx)>]| -> Vec<Dcsc> {
            mcm_par::par_map_range(parts.len(), mcm_par::max_threads(), |b| {
                let (bi, bj) = (b / pc, b % pc);
                Dcsc::from_unsorted_pairs(
                    off_r[bi + 1] - off_r[bi],
                    off_c[bj + 1] - off_c[bj],
                    &parts[b],
                )
            })
        };
        let blocks = build(&row_off, &col_off, &parts);
        let t_blocks = build(&t_row_off, &t_col_off, &t_parts);
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        let t_nnz = t_blocks.iter().map(|b| b.nnz()).sum();
        let a = Self { nrows: t.nrows(), ncols: t.ncols(), pr, pc, row_off, col_off, blocks, nnz };
        let at = Self {
            nrows: t.ncols(),
            ncols: t.nrows(),
            pr,
            pc,
            row_off: t_row_off,
            col_off: t_col_off,
            blocks: t_blocks,
            nnz: t_nnz,
        };
        (a, at)
    }

    /// [`DistMatrix::from_triples_mapped`] over an explicit grid.
    pub fn with_grid_mapped(
        t: &Triples,
        pr: usize,
        pc: usize,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
        transpose: bool,
    ) -> Self {
        let (nrows, ncols) =
            if transpose { (t.ncols(), t.nrows()) } else { (t.nrows(), t.ncols()) };
        if pr == 1 && pc == 1 {
            // Single-block fast path: no routing, no per-block partitions.
            let block = if rowp.is_none() && colp.is_none() && !transpose {
                Dcsc::from_unsorted_pairs(nrows, ncols, t.entries())
            } else if rowp.is_none() && colp.is_none() {
                Dcsc::from_unsorted_pairs(t.nrows(), t.ncols(), t.entries()).transposed()
            } else {
                let mapped: Vec<(Vidx, Vidx)> = t
                    .entries()
                    .iter()
                    .map(|&(i, j)| {
                        let pi = rowp.map_or(i, |p| p.apply(i));
                        let pj = colp.map_or(j, |p| p.apply(j));
                        if transpose {
                            (pj, pi)
                        } else {
                            (pi, pj)
                        }
                    })
                    .collect();
                Dcsc::from_unsorted_pairs(nrows, ncols, &mapped)
            };
            let nnz = block.nnz();
            return Self {
                nrows,
                ncols,
                pr,
                pc,
                row_off: vec![0, nrows],
                col_off: vec![0, ncols],
                blocks: vec![block],
                nnz,
            };
        }
        let row_off = block_offsets(nrows, pr);
        let col_off = block_offsets(ncols, pc);
        let mut parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(t.len() / (pr * pc) + 8)).collect();
        for &(i, j) in t.entries() {
            let pi = rowp.map_or(i, |p| p.apply(i));
            let pj = colp.map_or(j, |p| p.apply(j));
            let (gi, gj) = if transpose { (pj, pi) } else { (pi, pj) };
            let bi = block_owner(&row_off, gi as usize);
            let bj = block_owner(&col_off, gj as usize);
            parts[bi * pc + bj].push((gi - row_off[bi] as Vidx, gj - col_off[bj] as Vidx));
        }
        let blocks: Vec<Dcsc> = mcm_par::par_map_range(parts.len(), mcm_par::max_threads(), |b| {
            let (bi, bj) = (b / pc, b % pc);
            Dcsc::from_unsorted_pairs(
                row_off[bi + 1] - row_off[bi],
                col_off[bj + 1] - col_off[bj],
                &parts[b],
            )
        });
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        Self { nrows, ncols, pr, pc, row_off, col_off, blocks, nnz }
    }

    /// [`DistMatrix::with_grid_mapped_pair`] from a borrowed CSC view — the
    /// zero-copy load path for mmap-backed MCSB files (`mcm-store`).
    ///
    /// On a 1×1 grid (the shared-memory backend) no triple list ever
    /// exists: the unpermuted case compacts the view straight into DCSC
    /// ([`Dcsc::from_csc_view`]) and the permuted case streams mapped pairs
    /// through the two-pass counting builder ([`Dcsc::from_pair_iter`]).
    /// Multi-block grids scatter into per-block pair buffers, the same
    /// transient footprint as the triples-based path.
    pub fn with_grid_csc_pair(
        v: &CscView<'_>,
        pr: usize,
        pc: usize,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
    ) -> (Self, Self) {
        if pr == 1 && pc == 1 {
            let a_block = if rowp.is_none() && colp.is_none() {
                Dcsc::from_csc_view(v)
            } else {
                Dcsc::from_pair_iter(v.nrows(), v.ncols(), || {
                    v.iter().map(|(i, j)| {
                        (rowp.map_or(i, |p| p.apply(i)), colp.map_or(j, |p| p.apply(j)))
                    })
                })
            };
            let at_block = a_block.transposed();
            let (nnz, t_nnz) = (a_block.nnz(), at_block.nnz());
            let a = Self {
                nrows: v.nrows(),
                ncols: v.ncols(),
                pr: 1,
                pc: 1,
                row_off: vec![0, v.nrows()],
                col_off: vec![0, v.ncols()],
                blocks: vec![a_block],
                nnz,
            };
            let at = Self {
                nrows: v.ncols(),
                ncols: v.nrows(),
                pr: 1,
                pc: 1,
                row_off: vec![0, v.ncols()],
                col_off: vec![0, v.nrows()],
                blocks: vec![at_block],
                nnz: t_nnz,
            };
            return (a, at);
        }
        let row_off = block_offsets(v.nrows(), pr);
        let col_off = block_offsets(v.ncols(), pc);
        let t_row_off = block_offsets(v.ncols(), pr);
        let t_col_off = block_offsets(v.nrows(), pc);
        let cap = v.nnz() / (pr * pc) + 8;
        let mut parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(cap)).collect();
        let mut t_parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(cap)).collect();
        for (i, j) in v.iter() {
            let pi = rowp.map_or(i, |p| p.apply(i));
            let pj = colp.map_or(j, |p| p.apply(j));
            let bi = block_owner(&row_off, pi as usize);
            let bj = block_owner(&col_off, pj as usize);
            parts[bi * pc + bj].push((pi - row_off[bi] as Vidx, pj - col_off[bj] as Vidx));
            let tbi = block_owner(&t_row_off, pj as usize);
            let tbj = block_owner(&t_col_off, pi as usize);
            t_parts[tbi * pc + tbj]
                .push((pj - t_row_off[tbi] as Vidx, pi - t_col_off[tbj] as Vidx));
        }
        let build = |off_r: &[usize], off_c: &[usize], parts: &[Vec<(Vidx, Vidx)>]| -> Vec<Dcsc> {
            mcm_par::par_map_range(parts.len(), mcm_par::max_threads(), |b| {
                let (bi, bj) = (b / pc, b % pc);
                Dcsc::from_unsorted_pairs(
                    off_r[bi + 1] - off_r[bi],
                    off_c[bj + 1] - off_c[bj],
                    &parts[b],
                )
            })
        };
        let blocks = build(&row_off, &col_off, &parts);
        let t_blocks = build(&t_row_off, &t_col_off, &t_parts);
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        let t_nnz = t_blocks.iter().map(|b| b.nnz()).sum();
        let a = Self { nrows: v.nrows(), ncols: v.ncols(), pr, pc, row_off, col_off, blocks, nnz };
        let at = Self {
            nrows: v.ncols(),
            ncols: v.nrows(),
            pr,
            pc,
            row_off: t_row_off,
            col_off: t_col_off,
            blocks: t_blocks,
            nnz: t_nnz,
        };
        (a, at)
    }

    /// [`DistMatrix::with_grid_mapped`] from a borrowed CSC view (see
    /// [`DistMatrix::with_grid_csc_pair`] for the zero-copy guarantees).
    pub fn with_grid_csc(
        v: &CscView<'_>,
        pr: usize,
        pc: usize,
        rowp: Option<&Permutation>,
        colp: Option<&Permutation>,
        transpose: bool,
    ) -> Self {
        let (nrows, ncols) =
            if transpose { (v.ncols(), v.nrows()) } else { (v.nrows(), v.ncols()) };
        if pr == 1 && pc == 1 {
            let block = if rowp.is_none() && colp.is_none() && !transpose {
                Dcsc::from_csc_view(v)
            } else if rowp.is_none() && colp.is_none() {
                Dcsc::from_csc_view(v).transposed()
            } else {
                Dcsc::from_pair_iter(nrows, ncols, || {
                    v.iter().map(|(i, j)| {
                        let pi = rowp.map_or(i, |p| p.apply(i));
                        let pj = colp.map_or(j, |p| p.apply(j));
                        if transpose {
                            (pj, pi)
                        } else {
                            (pi, pj)
                        }
                    })
                })
            };
            let nnz = block.nnz();
            return Self {
                nrows,
                ncols,
                pr,
                pc,
                row_off: vec![0, nrows],
                col_off: vec![0, ncols],
                blocks: vec![block],
                nnz,
            };
        }
        let row_off = block_offsets(nrows, pr);
        let col_off = block_offsets(ncols, pc);
        let mut parts: Vec<Vec<(Vidx, Vidx)>> =
            (0..pr * pc).map(|_| Vec::with_capacity(v.nnz() / (pr * pc) + 8)).collect();
        for (i, j) in v.iter() {
            let pi = rowp.map_or(i, |p| p.apply(i));
            let pj = colp.map_or(j, |p| p.apply(j));
            let (gi, gj) = if transpose { (pj, pi) } else { (pi, pj) };
            let bi = block_owner(&row_off, gi as usize);
            let bj = block_owner(&col_off, gj as usize);
            parts[bi * pc + bj].push((gi - row_off[bi] as Vidx, gj - col_off[bj] as Vidx));
        }
        let blocks: Vec<Dcsc> = mcm_par::par_map_range(parts.len(), mcm_par::max_threads(), |b| {
            let (bi, bj) = (b / pc, b % pc);
            Dcsc::from_unsorted_pairs(
                row_off[bi + 1] - row_off[bi],
                col_off[bj + 1] - col_off[bj],
                &parts[b],
            )
        });
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        Self { nrows, ncols, pr, pc, row_off, col_off, blocks, nnz }
    }

    /// Global row count.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Grid shape `(pr, pc)`.
    #[inline]
    pub fn grid(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    /// The DCSC block at grid position `(bi, bj)`.
    #[inline]
    pub fn block(&self, bi: usize, bj: usize) -> &Dcsc {
        &self.blocks[bi * self.pc + bj]
    }

    /// Fraction of blocks that are hypersparse (`nnz < ncols`); grows with
    /// the grid and motivates DCSC (storage ablation).
    pub fn hypersparse_fraction(&self) -> f64 {
        let h = self.blocks.iter().filter(|b| b.is_hypersparse()).count();
        h as f64 / self.blocks.len() as f64
    }

    /// Expand phase: slices the frontier into the plan's per-block-column
    /// buffers (reused across calls) and returns the modeled allgather
    /// bottleneck volume.
    fn expand_into_slices<T: Copy>(&self, xs: &[(Vidx, T)], slices: &mut [SpVec<T>]) -> u64 {
        let mut expand_max = 0u64;
        for bj in 0..self.pc {
            let lo = xs.partition_point(|&(j, _)| (j as usize) < self.col_off[bj]);
            let hi = xs.partition_point(|&(j, _)| (j as usize) < self.col_off[bj + 1]);
            let off = self.col_off[bj] as Vidx;
            expand_max = expand_max.max(2 * (hi - lo) as u64);
            let slice = &mut slices[bj];
            slice.reset(self.col_off[bj + 1] - self.col_off[bj]);
            for &(j, v) in &xs[lo..hi] {
                slice.push(j - off, v);
            }
        }
        expand_max
    }

    /// Distributed semiring SpMSpV: `y = A ⊗ x` where `x` is a sparse vector
    /// over the columns and `y` over the rows.
    ///
    /// One-shot wrapper over [`DistMatrix::spmspv_with_plan`] with a
    /// throwaway plan; iteration loops should hold their own [`SpmvPlan`].
    ///
    /// * `mul(j, xj)` — semiring multiply, receives the **global** column
    ///   index (BFS rewrites the parent to `j` here). Evaluated once per
    ///   matched column; its value is cloned per traversed edge.
    /// * `take_incoming(acc, inc)` — semiring addition as a selection.
    ///
    /// Charges to `kernel`: expand allgather (bottleneck grid column), local
    /// multiply (`γ · max-block-flops / t`), fold alltoallv (bottleneck grid
    /// row). Deterministic: candidates arrive per row in ascending global
    /// column order, exactly like the serial kernel.
    pub fn spmspv<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let mut plan = SpmvPlan::new();
        self.spmspv_with_plan(ctx, kernel, &mut plan, x, mul, take_incoming)
    }

    /// [`DistMatrix::spmspv`] with caller-owned reusable buffers: the plan's
    /// per-block workspaces, output vectors, and frontier slices persist
    /// across calls, so repeated products (the MS-BFS iteration loop)
    /// allocate nothing in the kernel layer once warm.
    pub fn spmspv_with_plan<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        assert_eq!(x.len(), self.ncols, "frontier length must match ncols");
        let nblocks = self.pr * self.pc;
        plan.ensure(nblocks, self.pc);
        let SpmvPlan { blocks: states, slices } = plan;

        // ---- Expand: slice the frontier per block column. ----------------
        let expand_max = self.expand_into_slices(x.entries(), slices);
        ctx.charge_allgather(kernel, self.pr, expand_max);

        // ---- Local multiply: every block, reusing its workspace. ----------
        // With enough blocks to occupy the machine, parallelize across
        // blocks (serial kernel inside each). On small grids, run blocks in
        // sequence and let each product use the intra-block chunked kernel —
        // bit-identical output either way.
        let workers = mcm_par::max_threads();
        let slices = &*slices;
        let flops_per_block: Vec<u64> = if nblocks >= workers {
            mcm_par::par_for_each_mut(&mut states[..nblocks], workers, |b, st| {
                let bj = b % self.pc;
                let off = self.col_off[bj] as Vidx;
                st.ws.spmspv_into(
                    &self.blocks[b],
                    &slices[bj],
                    |lj, v| mul(lj + off, v),
                    |acc, inc| take_incoming(acc, inc),
                    &mut st.out,
                )
            })
        } else {
            states[..nblocks]
                .iter_mut()
                .enumerate()
                .map(|(b, st)| {
                    let bj = b % self.pc;
                    let off = self.col_off[bj] as Vidx;
                    st.ws.spmspv_parallel_into(
                        &self.blocks[b],
                        &slices[bj],
                        workers,
                        |lj, v| mul(lj + off, v),
                        |acc, inc| take_incoming(acc, inc),
                        &mut st.out,
                    )
                })
                .collect()
        };
        let max_flops = flops_per_block.iter().copied().max().unwrap_or(0);
        ctx.charge_compute(kernel, max_flops);

        // ---- Fold: merge partials along each block row. -------------------
        // Per-row candidates must arrive in ascending global column order
        // (matching serial semantics for order-sensitive combiners): extend
        // in ascending bj order, then a stable by-row sort.
        struct FoldOut<U> {
            entries: Vec<(Vidx, U)>,
            max_send: u64,
            max_recv: u64,
        }

        let states = &states[..nblocks];
        let folded: Vec<FoldOut<U>> = mcm_par::par_map_range(self.pr, workers, |bi| {
            let parts = &states[bi * self.pc..(bi + 1) * self.pc];
            let block_rows = self.row_off[bi + 1] - self.row_off[bi];
            let max_send = parts.iter().map(|st| 2 * st.out.nnz() as u64).max().unwrap_or(0);
            let mut merged: Vec<(Vidx, U)> =
                Vec::with_capacity(parts.iter().map(|st| st.out.nnz()).sum());
            for st in parts {
                merged.extend(st.out.iter().map(|(i, v)| (i, *v)));
            }
            // Stable by-row sort keeps ascending-bj (hence ascending
            // global column) arrival order per row.
            merged.sort_by_key(|&(i, _)| i);
            // Receiver volumes come from the PRE-merge partials: the
            // wire carries every block's candidate, and the receiving
            // rank folds duplicates only after they arrive.
            let mut recv = vec![0u64; self.pc];
            for &(i, _) in &merged {
                recv[crate::collectives::balanced_owner(block_rows.max(1), self.pc, i as usize)] +=
                    2;
            }
            let max_recv = recv.into_iter().max().unwrap_or(0);
            let mut out: Vec<(Vidx, U)> = Vec::with_capacity(merged.len());
            for (i, v) in merged {
                match out.last_mut() {
                    Some((last, acc)) if *last == i => {
                        if take_incoming(acc, &v) {
                            *acc = v;
                        }
                    }
                    _ => out.push((i, v)),
                }
            }
            // Globalize row indices.
            let off = self.row_off[bi] as Vidx;
            let entries = out.into_iter().map(|(i, v)| (i + off, v)).collect();
            FoldOut { entries, max_send, max_recv }
        });

        let fold_bottleneck = folded.iter().map(|f| f.max_send.max(f.max_recv)).max().unwrap_or(0);
        ctx.charge_alltoallv(kernel, self.pc, fold_bottleneck);

        let mut entries = Vec::with_capacity(folded.iter().map(|f| f.entries.len()).sum());
        for f in folded {
            entries.extend(f.entries);
        }
        SpVec::from_sorted_pairs(self.nrows, entries)
    }

    /// Bottom-up ("pull") frontier expansion — the direction-optimizing
    /// counterpart of [`DistMatrix::spmspv`], per the paper's §VII future
    /// work ("the bottom-up BFS in distributed memory", after Beamer's
    /// direction-optimizing BFS).
    ///
    /// `self` must be the **transpose** `Aᵀ` (an `n2 × n1` matrix whose
    /// columns are the rows of `A`). Instead of scanning the frontier
    /// columns' adjacency, every *candidate* (unvisited) row scans its own
    /// adjacency and stops at the first frontier member — a large win when
    /// the frontier covers much of the graph, because most rows stop after
    /// O(1) probes.
    ///
    /// Within a block, adjacency is scanned in ascending column order, and
    /// blocks merge in ascending block-row order, so with the `minParent`
    /// semiring the early exit is *exact*: the result is bit-identical to
    /// the top-down product. (Randomized semirings get a valid but possibly
    /// different parent choice; MCM correctness does not depend on which.)
    ///
    /// Charges to `kernel`: an allgather of the frontier slice along each
    /// grid column (bitmap + values — the frontier is dense here, which is
    /// precisely when bottom-up is chosen), the scanned-edge compute at the
    /// bottleneck block, and the candidate-merge alltoallv along grid rows.
    #[allow(clippy::too_many_arguments)] // mirrors the kernel's real parameter surface
    pub fn bottom_up_spmspv<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        candidates: &[Vidx],
        frontier: &[Option<T>],
        frontier_nnz: usize,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Sync,
        U: Send,
    {
        // In Aᵀ terms: nrows = n2 (A's columns = frontier side),
        // ncols = n1 (A's rows = candidate side).
        assert_eq!(frontier.len(), self.nrows, "frontier must cover A's columns");
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));

        // ---- Frontier replication along each grid column. -----------------
        // Every process needs the frontier slice matching its block's
        // A-column range: a bitmap word per 64 columns plus the values.
        let mut expand_max = 0u64;
        for bi in 0..self.pr {
            let range = self.row_off[bi + 1] - self.row_off[bi];
            let slice_nnz = frontier[self.row_off[bi]..self.row_off[bi + 1]]
                .iter()
                .filter(|v| v.is_some())
                .count() as u64;
            expand_max = expand_max.max(range as u64 / 64 + 2 * slice_nnz);
        }
        // The slice for block row bi is replicated across that grid row's
        // pc ranks (on the square grids the paper uses, pr == pc).
        ctx.charge_allgather(kernel, self.pc, expand_max);
        let _ = frontier_nnz;

        // ---- Per-block candidate scans with early exit. --------------------
        struct BlockOut<U> {
            bi: usize,
            /// (global candidate index, chosen value)
            hits: Vec<(Vidx, U)>,
            flops: u64,
        }
        let outs: Vec<BlockOut<U>> =
            mcm_par::par_map_range(self.pr * self.pc, mcm_par::max_threads(), |b| {
                let (bi, bj) = (b / self.pc, b % self.pc);
                let block = &self.blocks[b];
                let col_lo = self.col_off[bj];
                let col_hi = self.col_off[bj + 1];
                let lo = candidates.partition_point(|&r| (r as usize) < col_lo);
                let hi = candidates.partition_point(|&r| (r as usize) < col_hi);
                let row_base = self.row_off[bi] as Vidx;
                let mut hits = Vec::new();
                let mut flops = 0u64;
                for &r in &candidates[lo..hi] {
                    let local = (r as usize - col_lo) as Vidx;
                    for &li in block.col(local as usize) {
                        flops += 1;
                        let gcol = li + row_base; // a column of A
                        if let Some(v) = &frontier[gcol as usize] {
                            hits.push((r, mul(gcol, v)));
                            break; // early exit: first frontier neighbour
                        }
                    }
                }
                BlockOut { bi, hits, flops }
            });
        let max_flops = outs.iter().map(|o| o.flops).max().unwrap_or(0);
        ctx.charge_compute(kernel, max_flops);

        // ---- Merge candidate hits across block rows (grid-row reduce). ----
        let max_hits = outs.iter().map(|o| 2 * o.hits.len() as u64).max().unwrap_or(0);
        ctx.charge_alltoallv(kernel, self.pr, max_hits);
        let mut ordered: Vec<BlockOut<U>> = outs;
        ordered.sort_by_key(|o| o.bi); // ascending A-column ranges
        let mut merged: Vec<(Vidx, U)> = Vec::new();
        for out in ordered {
            for (r, v) in out.hits {
                merged.push((r, v));
            }
        }
        merged.sort_by_key(|&(r, _)| r); // stable: keeps ascending-bi arrival
        let mut result: Vec<(Vidx, U)> = Vec::with_capacity(merged.len());
        for (r, v) in merged {
            match result.last_mut() {
                Some((last, acc)) if *last == r => {
                    if take_incoming(acc, &v) {
                        *acc = v;
                    }
                }
                _ => result.push((r, v)),
            }
        }
        SpVec::from_sorted_pairs(self.ncols, result)
    }

    /// Distributed SpMSpV over a general *monoid* addition (`combine`
    /// folds a candidate into the accumulator — must be commutative and
    /// associative, e.g. `+` for the counting semirings the maximal-matching
    /// initializers use for dynamic degree updates). Same communication plan
    /// and charging as [`DistMatrix::spmspv`]; one-shot wrapper over
    /// [`DistMatrix::spmspv_monoid_with_plan`].
    pub fn spmspv_monoid<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let mut plan = SpmvPlan::new();
        self.spmspv_monoid_with_plan(ctx, kernel, &mut plan, x, mul, combine)
    }

    /// [`DistMatrix::spmspv_monoid`] with caller-owned reusable buffers
    /// (see [`DistMatrix::spmspv_with_plan`]).
    pub fn spmspv_monoid_with_plan<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        assert_eq!(x.len(), self.ncols, "frontier length must match ncols");
        let nblocks = self.pr * self.pc;
        plan.ensure(nblocks, self.pc);
        let SpmvPlan { blocks: states, slices } = plan;

        let expand_max = self.expand_into_slices(x.entries(), slices);
        ctx.charge_allgather(kernel, self.pr, expand_max);

        let workers = mcm_par::max_threads();
        let slices = &*slices;
        let flops_per_block: Vec<u64> =
            mcm_par::par_for_each_mut(&mut states[..nblocks], workers, |b, st| {
                let bj = b % self.pc;
                let off = self.col_off[bj] as Vidx;
                st.ws.spmspv_monoid_into(
                    &self.blocks[b],
                    &slices[bj],
                    |lj, v| mul(lj + off, v),
                    |acc, inc| combine(acc, inc),
                    &mut st.out,
                )
            });
        let max_flops = flops_per_block.iter().copied().max().unwrap_or(0);
        ctx.charge_compute(kernel, max_flops);

        let states = &states[..nblocks];
        let folded: Vec<(Vec<(Vidx, U)>, u64)> = mcm_par::par_map_range(self.pr, workers, |bi| {
            let parts = &states[bi * self.pc..(bi + 1) * self.pc];
            let block_rows = self.row_off[bi + 1] - self.row_off[bi];
            let max_send = parts.iter().map(|st| 2 * st.out.nnz() as u64).max().unwrap_or(0);
            let mut merged: Vec<(Vidx, U)> =
                Vec::with_capacity(parts.iter().map(|st| st.out.nnz()).sum());
            for st in parts {
                merged.extend(st.out.iter().map(|(i, v)| (i, *v)));
            }
            merged.sort_by_key(|&(i, _)| i);
            // Pre-merge receive volumes, as in `spmspv`'s fold.
            let mut recv = vec![0u64; self.pc];
            for &(i, _) in &merged {
                recv[crate::collectives::balanced_owner(block_rows.max(1), self.pc, i as usize)] +=
                    2;
            }
            let max_recv = recv.into_iter().max().unwrap_or(0);
            let mut out: Vec<(Vidx, U)> = Vec::with_capacity(merged.len());
            for (i, v) in merged {
                match out.last_mut() {
                    Some((last, acc)) if *last == i => combine(acc, v),
                    _ => out.push((i, v)),
                }
            }
            let off = self.row_off[bi] as Vidx;
            let entries: Vec<(Vidx, U)> = out.into_iter().map(|(i, v)| (i + off, v)).collect();
            (entries, max_send.max(max_recv))
        });

        let fold_bottleneck = folded.iter().map(|(_, s)| *s).max().unwrap_or(0);
        ctx.charge_alltoallv(kernel, self.pc, fold_bottleneck);

        let mut entries = Vec::with_capacity(folded.iter().map(|(e, _)| e.len()).sum());
        for (e, _) in folded {
            entries.extend(e);
        }
        SpVec::from_sorted_pairs(self.nrows, entries)
    }

    /// Shared-memory-backend SpMSpV: one **fused** product over the single
    /// physical block, with expand/fold volumes accounted at the logical
    /// `lpr × lpc` grid.
    ///
    /// Where [`DistMatrix::spmspv_with_plan`] materializes per-block-column
    /// frontier slices (expand) and per-block partial vectors that are
    /// concatenated, sorted, and deduplicated (fold), this path writes every
    /// contribution **directly into the destination's region of one shared
    /// sparse accumulator** — the fused expand/fold of the shared backend:
    /// no slice copies, no partial buffers, no merge sort. The α–β–γ
    /// charges are identical to the distributed execution's because the
    /// fused kernel counts, in-line, exactly the per-logical-block volumes
    /// the split execution would ship (see
    /// [`SpmvWorkspace::spmspv_fused_into`]); results are bit-identical by
    /// grid independence (per-row candidates fold in ascending global
    /// column order in both).
    ///
    /// `self` must live on a 1×1 (single physical block) grid.
    #[allow(clippy::too_many_arguments)] // mirrors spmspv_with_plan + the logical grid
    pub(crate) fn spmspv_shared<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        lpr: usize,
        lpc: usize,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        assert_eq!(x.len(), self.ncols, "frontier length must match ncols");
        assert_eq!((self.pr, self.pc), (1, 1), "shared kernel needs a single physical block");
        plan.ensure(1, 1);
        let lrow_off = block_offsets(self.nrows, lpr);
        let lcol_off = block_offsets(self.ncols, lpc);

        // Logical expand: the bottleneck frontier slice along a grid column
        // (no slice is materialized — the fused kernel reads `x` in place).
        ctx.charge_allgather(kernel, lpr, logical_expand_max(x.entries(), &lcol_off));

        let mut y = SpVec::new(0);
        let vols = plan.blocks[0].ws.spmspv_fused_into(
            &self.blocks[0],
            x,
            &lrow_off,
            &lcol_off,
            |bi, li| {
                let rows = (lrow_off[bi + 1] - lrow_off[bi]).max(1);
                crate::collectives::balanced_owner(rows, lpc, li)
            },
            |j, v| mul(j, v),
            |acc, inc| take_incoming(acc, inc),
            &mut y,
        );
        ctx.charge_compute(kernel, vols.max_flops);
        ctx.charge_alltoallv(kernel, lpc, vols.fold_bottleneck);
        y
    }

    /// Monoid counterpart of [`DistMatrix::spmspv_shared`] (mirrors
    /// [`DistMatrix::spmspv_monoid_with_plan`]'s charges).
    #[allow(clippy::too_many_arguments)] // mirrors spmspv_monoid_with_plan + the logical grid
    pub(crate) fn spmspv_monoid_shared<T, U>(
        &self,
        ctx: &mut DistCtx,
        kernel: Kernel,
        lpr: usize,
        lpc: usize,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        assert_eq!(x.len(), self.ncols, "frontier length must match ncols");
        assert_eq!((self.pr, self.pc), (1, 1), "shared kernel needs a single physical block");
        plan.ensure(1, 1);
        let lrow_off = block_offsets(self.nrows, lpr);
        let lcol_off = block_offsets(self.ncols, lpc);

        ctx.charge_allgather(kernel, lpr, logical_expand_max(x.entries(), &lcol_off));

        let mut y = SpVec::new(0);
        let vols = plan.blocks[0].ws.spmspv_monoid_fused_into(
            &self.blocks[0],
            x,
            &lrow_off,
            &lcol_off,
            |bi, li| {
                let rows = (lrow_off[bi + 1] - lrow_off[bi]).max(1);
                crate::collectives::balanced_owner(rows, lpc, li)
            },
            |j, v| mul(j, v),
            |acc, inc| combine(acc, inc),
            &mut y,
        );
        ctx.charge_compute(kernel, vols.max_flops);
        ctx.charge_alltoallv(kernel, lpc, vols.fold_bottleneck);
        y
    }

    /// Engine-backend SpMSpV: the same expand → multiply → fold plan as
    /// [`DistMatrix::spmspv_with_plan`], executed as one real session on
    /// the [`EngineComm`] channel mesh with rank `(bi, bj)` owning plan
    /// block `(bi, bj)` — the frontier allgathers along each grid column
    /// and partials fold along each grid row, exactly the CombBLAS 2D
    /// pattern the simulator models. Bit-identical to the simulator
    /// (candidates fold per row in ascending global column order) and
    /// charge-mirrored from the observed per-rank volumes.
    pub(crate) fn spmspv_mesh<T, U>(
        &self,
        eng: &mut EngineComm,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        self.mesh_product(eng, kernel, plan, x, &mul, MeshFold::Select(&take_incoming))
    }

    /// Engine-backend counterpart of [`DistMatrix::spmspv_monoid_with_plan`]
    /// (see [`DistMatrix::spmspv_mesh`]).
    pub(crate) fn spmspv_monoid_mesh<T, U>(
        &self,
        eng: &mut EngineComm,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        self.mesh_product(eng, kernel, plan, x, &mul, MeshFold::Monoid(&combine))
    }

    fn mesh_product<T, U>(
        &self,
        eng: &mut EngineComm,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: &(dyn Fn(Vidx, &T) -> U + Sync),
        fold: MeshFold<'_, U>,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        assert_eq!(x.len(), self.ncols, "frontier length must match ncols");
        let (pr, pc) = (self.pr, self.pc);
        let grid = &eng.ctx().machine.grid;
        assert_eq!((grid.pr, grid.pc), (pr, pc), "matrix grid must match the engine mesh");
        let nblocks = pr * pc;
        let p = nblocks;
        plan.ensure(nblocks, pc);

        // Owner distribution of the frontier: block column bj's x-range is
        // sub-split across that grid column's pr ranks, so the expand
        // allgather moves exactly the volume the cost model charges.
        let xs = x.entries();
        let mut piece_data: Vec<Vec<Wire<T, U>>> = (0..p).map(|_| Vec::new()).collect();
        for bj in 0..pc {
            let lo = xs.partition_point(|&(j, _)| (j as usize) < self.col_off[bj]);
            let hi = xs.partition_point(|&(j, _)| (j as usize) < self.col_off[bj + 1]);
            let off = self.col_off[bj] as Vidx;
            let offs = block_offsets(hi - lo, pr);
            for bi in 0..pr {
                let seg = &xs[lo + offs[bi]..lo + offs[bi + 1]];
                piece_data[bi * pc + bj] = seg.iter().map(|&(j, v)| Wire::X(j - off, v)).collect();
            }
        }
        type PieceSlot<T, U> = Mutex<Option<Vec<Wire<T, U>>>>;
        let pieces: Vec<PieceSlot<T, U>> =
            piece_data.into_iter().map(|d| Mutex::new(Some(d))).collect();

        // 1:1 rank ↔ plan block — the mesh *is* the matrix grid, so every
        // rank reuses "its" workspace and output buffer across calls.
        let slots: Vec<Mutex<&mut PlanBlock<U>>> =
            plan.blocks[..nblocks].iter_mut().map(Mutex::new).collect();

        let threads = eng.ctx().threads();
        let row_off = &self.row_off;
        let col_off = &self.col_off;
        let blocks = &self.blocks;
        let fold = &fold;

        let results: Vec<MeshOut<U>> = eng.session::<Wire<T, U>, _, _>(|mut comm| {
            let q = comm.rank();
            let (bi, bj) = (q / pc, q % pc);

            // -- Expand: allgather frontier pieces along this grid column.
            // Group order is ascending bi and pieces are consecutive
            // subranges, so concatenation rebuilds the sorted slice.
            let mine = pieces[q].lock().unwrap().take().expect("frontier piece consumed twice");
            let col_group: Vec<usize> = (0..pr).map(|i| i * pc + bj).collect();
            let gathered = comm.allgatherv(&col_group, mine);
            let mut slice_entries: Vec<(Vidx, T)> = Vec::new();
            for msg in gathered {
                for w in msg {
                    match w {
                        Wire::X(lj, v) => slice_entries.push((lj, v)),
                        Wire::Y(..) => unreachable!("fold payload during expand"),
                    }
                }
            }
            let slice_nnz = slice_entries.len() as u64;
            let slice = SpVec::from_sorted_pairs(col_off[bj + 1] - col_off[bj], slice_entries);

            // -- Local multiply into this rank's plan block.
            let mut guard = slots[q].lock().unwrap();
            let st = &mut **guard;
            let off = col_off[bj] as Vidx;
            let block = &blocks[q];
            let flops = match fold {
                MeshFold::Select(take) => {
                    if threads > 1 {
                        st.ws.spmspv_parallel_into(
                            block,
                            &slice,
                            threads,
                            |lj, v| mul(lj + off, v),
                            |acc, inc| take(acc, inc),
                            &mut st.out,
                        )
                    } else {
                        st.ws.spmspv_into(
                            block,
                            &slice,
                            |lj, v| mul(lj + off, v),
                            |acc, inc| take(acc, inc),
                            &mut st.out,
                        )
                    }
                }
                MeshFold::Monoid(comb) => st.ws.spmspv_monoid_into(
                    block,
                    &slice,
                    |lj, v| mul(lj + off, v),
                    |acc, inc| comb(acc, inc),
                    &mut st.out,
                ),
            };

            // -- Fold: route partials to their row owners along this grid
            // row; group order (ascending bj) plus the stable by-row sort
            // keeps per-row candidates in ascending global column order.
            let block_rows = (row_off[bi + 1] - row_off[bi]).max(1);
            let mut sends: Vec<Vec<Wire<T, U>>> = (0..pc).map(|_| Vec::new()).collect();
            for (i, v) in st.out.iter() {
                let owner = crate::collectives::balanced_owner(block_rows, pc, i as usize);
                sends[owner].push(Wire::Y(i, *v));
            }
            let sent_pairs = st.out.nnz() as u64;
            drop(guard);
            let row_group: Vec<usize> = (0..pc).map(|j| bi * pc + j).collect();
            let recvd = comm.alltoallv(&row_group, sends);
            let mut merged: Vec<(Vidx, U)> = Vec::new();
            for msg in recvd {
                for w in msg {
                    match w {
                        Wire::Y(i, v) => merged.push((i, v)),
                        Wire::X(..) => unreachable!("expand payload during fold"),
                    }
                }
            }
            let recv_pairs = merged.len() as u64;
            merged.sort_by_key(|&(i, _)| i);
            let mut folded: Vec<(Vidx, U)> = Vec::with_capacity(merged.len());
            for (i, v) in merged {
                match folded.last_mut() {
                    Some((last, acc)) if *last == i => match fold {
                        MeshFold::Select(take) => {
                            if take(acc, &v) {
                                *acc = v;
                            }
                        }
                        MeshFold::Monoid(comb) => comb(acc, v),
                    },
                    _ => folded.push((i, v)),
                }
            }
            let roff = row_off[bi] as Vidx;
            let entries: Vec<(Vidx, U)> = folded.into_iter().map(|(i, v)| (i + roff, v)).collect();
            MeshOut { entries, flops, slice_nnz, sent_pairs, recv_pairs }
        });

        // Mirror the simulator's charges from the observed volumes (the
        // exact formulas of `spmspv_with_plan`, computed per rank here:
        // send/recv pairs are 2 words each, slices 2 words per entry).
        let expand_max = results.iter().map(|r| 2 * r.slice_nnz).max().unwrap_or(0);
        let max_flops = results.iter().map(|r| r.flops).max().unwrap_or(0);
        let fold_bottleneck =
            results.iter().map(|r| (2 * r.sent_pairs).max(2 * r.recv_pairs)).max().unwrap_or(0);
        let ctx = eng.ctx_mut();
        ctx.charge_allgather(kernel, pr, expand_max);
        ctx.charge_compute(kernel, max_flops);
        ctx.charge_alltoallv(kernel, pc, fold_bottleneck);

        // Rank order is row-major over the grid and outputs are globalized
        // per block row, so rank-order concatenation is globally ascending.
        let mut entries = Vec::with_capacity(results.iter().map(|r| r.entries.len()).sum());
        for r in results {
            entries.extend(r.entries);
        }
        SpVec::from_sorted_pairs(self.nrows, entries)
    }
}

/// Bottleneck expand volume of a frontier against logical column-block
/// offsets: `max_bj 2 · |{entries in block bj}|`, identical to what
/// `expand_into_slices` reports without building the slices.
fn logical_expand_max<T>(xs: &[(Vidx, T)], lcol_off: &[usize]) -> u64 {
    let mut expand_max = 0u64;
    for w in lcol_off.windows(2) {
        let lo = xs.partition_point(|&(j, _)| (j as usize) < w[0]);
        let hi = xs.partition_point(|&(j, _)| (j as usize) < w[1]);
        expand_max = expand_max.max(2 * (hi - lo) as u64);
    }
    expand_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn fig2_triples() -> Triples {
        Triples::from_edges(
            4,
            5,
            vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 2), (2, 4), (3, 3), (3, 4)],
        )
    }

    fn serial_reference(t: &Triples, x: &SpVec<(Vidx, Vidx)>) -> SpVec<(Vidx, Vidx)> {
        let a = Dcsc::from_triples(t);
        mcm_sparse::spmspv(&a, x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0).y
    }

    #[test]
    fn distributed_matches_serial_on_all_grids() {
        let t = fig2_triples();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        let want = serial_reference(&t, &x);
        for dim in 1..=4 {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let y =
                a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0);
            assert_eq!(y, want, "grid {dim}x{dim}");
        }
    }

    #[test]
    fn plan_reuse_matches_one_shot_across_iterations() {
        // The same plan serves many products (different frontiers) with
        // identical results, and its workspaces report steady-state reuse.
        let t = fig2_triples();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let mut plan: SpmvPlan<(Vidx, Vidx), (Vidx, Vidx)> = SpmvPlan::new();
        let frontiers = [
            SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]),
            SpVec::from_pairs(5, vec![(2, (2, 2))]),
            SpVec::from_pairs(5, vec![(0, (0, 0)), (3, (3, 3))]),
        ];
        for x in &frontiers {
            let via_plan = a.spmspv_with_plan(
                &mut ctx,
                Kernel::SpMV,
                &mut plan,
                x,
                |j, &(_, r)| (j, r),
                |acc, inc| inc.0 < acc.0,
            );
            let one_shot =
                a.spmspv(&mut ctx, Kernel::SpMV, x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0);
            assert_eq!(via_plan, one_shot);
        }
        let stats = plan.stats();
        assert!(stats.calls >= 3);
        assert!(stats.reuse_hits > 0, "later iterations must reuse warm buffers");
    }

    #[test]
    fn blocks_partition_nnz() {
        let t = fig2_triples();
        let a = DistMatrix::with_grid(&t, 3, 2);
        assert_eq!(a.nnz(), 9);
        let sum: usize = (0..3)
            .flat_map(|i| (0..2).map(move |j| (i, j)))
            .map(|(i, j)| a.block(i, j).nnz())
            .sum();
        assert_eq!(sum, 9);
    }

    #[test]
    fn charges_grow_with_grid() {
        let t = fig2_triples();
        let x = SpVec::from_pairs(5, vec![(0, 0u32), (1, 1), (4, 4)]);
        let run = |dim: usize| {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let _ = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |acc, inc| inc < acc);
            ctx.timers.seconds(Kernel::SpMV)
        };
        // On one process the latency terms vanish; on a 2x2 grid they don't.
        assert!(run(2) > run(1));
    }

    #[test]
    fn empty_frontier_yields_empty_result() {
        let t = fig2_triples();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let a = DistMatrix::from_triples(&ctx, &t);
        let x: SpVec<u32> = SpVec::new(5);
        let y = a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, _| j, |_, _| false);
        assert!(y.is_empty());
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn bottom_up_matches_top_down_under_min_parent() {
        let t = fig2_triples();
        let x = SpVec::from_pairs(5, vec![(0, (0u32, 0u32)), (1, (1, 1)), (4, (4, 4))]);
        // Dense frontier map over the 5 columns.
        let mut fmap: Vec<Option<(Vidx, Vidx)>> = vec![None; 5];
        for (j, &v) in x.iter() {
            fmap[j as usize] = Some(v);
        }
        for dim in 1..=3 {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let top =
                a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0);
            let at = DistMatrix::from_triples(&ctx, &t.transposed());
            let candidates: Vec<Vidx> = (0..4).collect(); // all rows unvisited
            let bottom = at.bottom_up_spmspv(
                &mut ctx,
                Kernel::SpMV,
                &candidates,
                &fmap,
                x.nnz(),
                |j, &(_, r)| (j, r),
                |acc: &(Vidx, Vidx), inc| inc.0 < acc.0,
            );
            assert_eq!(bottom, top, "grid {dim}x{dim}");
        }
    }

    #[test]
    fn bottom_up_respects_candidate_subset() {
        let t = fig2_triples();
        let mut fmap: Vec<Option<u32>> = vec![None; 5];
        fmap[0] = Some(7); // only c1 in frontier
        let mut ctx = DistCtx::new(MachineConfig::hybrid(2, 1));
        let at = DistMatrix::from_triples(&ctx, &t.transposed());
        // Only rows r2 (adjacent to c1) and r3 (not adjacent) are candidates.
        let y = at.bottom_up_spmspv(
            &mut ctx,
            Kernel::SpMV,
            &[1, 2],
            &fmap,
            1,
            |j, &v| (j, v),
            |_, _| false,
        );
        assert_eq!(y.entries(), &[(1, (0, 7))]);
    }

    #[test]
    fn bottom_up_early_exit_saves_flops() {
        // Full frontier: every candidate stops at its first neighbour, so
        // scanned edges = number of candidates (rows with any neighbour).
        let t = fig2_triples();
        let fmap: Vec<Option<u32>> = (0..5).map(Some).collect();
        let mut ctx = DistCtx::new(MachineConfig::hybrid(1, 1));
        let at = DistMatrix::from_triples(&ctx, &t.transposed());
        let before = ctx.timers.seconds(Kernel::SpMV);
        let _ = at.bottom_up_spmspv(
            &mut ctx,
            Kernel::SpMV,
            &[0, 1, 2, 3],
            &fmap,
            5,
            |j, &v| (j, v),
            |_, _| false,
        );
        // With gamma = 8 ns and 4 single-probe candidates on one process:
        // exactly 4 probes charged (p = 1: no comm terms).
        let scanned = (ctx.timers.seconds(Kernel::SpMV) - before) / ctx.cost.gamma;
        assert!((scanned - 4.0).abs() < 1e-6, "scanned {scanned} edges, expected 4");
    }

    #[test]
    fn monoid_matches_serial_counting() {
        let t = fig2_triples();
        let x = SpVec::from_pairs(5, vec![(0, ()), (1, ()), (4, ())]);
        let a_serial = Dcsc::from_triples(&t);
        let want = mcm_sparse::spmspv_monoid(&a_serial, &x, |_, _| 1u32, |a, b| *a += b).y;
        for dim in 1..=3 {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let y = a.spmspv_monoid(&mut ctx, Kernel::Init, &x, |_, _| 1u32, |a, b| *a += b);
            assert_eq!(y, want, "grid {dim}x{dim}");
        }
    }

    #[test]
    fn hypersparse_fraction_increases_with_grid() {
        // A sparse-ish random-ish structure: diagonal of a 64x64.
        let t = Triples::from_edges(64, 64, (0..64).map(|i| (i as Vidx, i as Vidx)).collect());
        let small = DistMatrix::with_grid(&t, 2, 2);
        let large = DistMatrix::with_grid(&t, 16, 16);
        assert!(large.hypersparse_fraction() >= small.hypersparse_fraction());
    }

    #[test]
    fn mesh_product_matches_simulator_bit_for_bit() {
        // The engine mesh runs real ranks over real channels; the result —
        // including tie-breaks of the order-sensitive min-column semiring —
        // must equal the simulator's on every square grid, for both the
        // select and monoid folds, at 1 and 2 intra-rank threads.
        let t = fig2_triples();
        let x: SpVec<(Vidx, Vidx)> =
            SpVec::from_pairs(5, vec![(0, (0, 0)), (2, (2, 2)), (3, (3, 3)), (4, (4, 4))]);
        let cnt = SpVec::from_pairs(5, vec![(0, ()), (1, ()), (3, ()), (4, ())]);
        for dim in 1..=3usize {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let want =
                a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0);
            let want_cnt =
                a.spmspv_monoid(&mut ctx, Kernel::Init, &cnt, |_, _| 1u32, |a, b| *a += b);
            for threads in [1usize, 2] {
                let mut eng = EngineComm::new(dim * dim, threads);
                let mut plan = SpmvPlan::new();
                let got = a.spmspv_mesh(
                    &mut eng,
                    Kernel::SpMV,
                    &mut plan,
                    &x,
                    |j, &(_, r)| (j, r),
                    |acc, inc| inc.0 < acc.0,
                );
                assert_eq!(got, want, "grid {dim}x{dim} threads {threads}");
                // Plan buffers reused across engine calls, still identical.
                let again = a.spmspv_mesh(
                    &mut eng,
                    Kernel::SpMV,
                    &mut plan,
                    &x,
                    |j, &(_, r)| (j, r),
                    |acc, inc| inc.0 < acc.0,
                );
                assert_eq!(again, want, "grid {dim}x{dim} threads {threads} (reused plan)");

                let mut cnt_plan = SpmvPlan::new();
                let got_cnt = a.spmspv_monoid_mesh(
                    &mut eng,
                    Kernel::Init,
                    &mut cnt_plan,
                    &cnt,
                    |_, _| 1u32,
                    |a, b| *a += b,
                );
                assert_eq!(got_cnt, want_cnt, "monoid grid {dim}x{dim} threads {threads}");
            }
        }
    }

    #[test]
    fn mesh_product_mirrors_simulator_charges() {
        // Same volumes → same modeled charges: the engine backend's SpMV
        // accounting must agree with the simulator's per kernel call.
        let t = fig2_triples();
        let x: SpVec<(Vidx, Vidx)> =
            SpVec::from_pairs(5, vec![(0, (0, 0)), (2, (2, 2)), (4, (4, 4))]);
        for dim in [2usize, 3] {
            let mut ctx = DistCtx::new(MachineConfig::hybrid(dim, 1));
            let a = DistMatrix::from_triples(&ctx, &t);
            let before = ctx.timers.seconds(Kernel::SpMV);
            let _ =
                a.spmspv(&mut ctx, Kernel::SpMV, &x, |j, &(_, r)| (j, r), |acc, inc| inc.0 < acc.0);
            let sim_cost = ctx.timers.seconds(Kernel::SpMV) - before;

            let mut eng = EngineComm::new(dim * dim, 1);
            let mut plan = SpmvPlan::new();
            let _ = a.spmspv_mesh(
                &mut eng,
                Kernel::SpMV,
                &mut plan,
                &x,
                |j, &(_, r)| (j, r),
                |acc, inc| inc.0 < acc.0,
            );
            let eng_cost = eng.ctx().timers.seconds(Kernel::SpMV);
            assert!(
                (sim_cost - eng_cost).abs() < 1e-15,
                "grid {dim}x{dim}: sim {sim_cost} vs engine {eng_cost}"
            );
        }
    }
}
