//! A real message-passing execution engine (validation backend).
//!
//! The cost-model simulator in [`crate::distmat`] executes kernels on shard
//! data without materializing message buffers. This module provides the
//! ground truth it is validated against: `p` *actual ranks* (OS threads),
//! each holding **only its own shard**, exchanging data through
//! bounded std mpsc channels with MPI-like collectives. Tests in this crate
//! and in `tests/` run the same kernels on both backends and assert
//!
//! 1. identical results, and
//! 2. that the words each rank really sent/received match the volumes the
//!    cost model charged.
//!
//! The engine is deliberately small (full channel mesh, rendezvous-free
//! collectives) — it is a correctness oracle for communication patterns,
//! not a performance vehicle.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

use crate::sched::{RankSched, Schedule};

/// Per-rank communicator: a full mesh of typed byte-free channels plus a
/// sent-word counter.
pub struct RankComm<T: Send> {
    rank: usize,
    p: usize,
    /// `senders[dst]` delivers into `dst`'s inbox.
    senders: Vec<SyncSender<(usize, Vec<T>)>>,
    receiver: Receiver<(usize, Vec<T>)>,
    /// Elements this rank pushed into the mesh (monotonic).
    sent_elems: u64,
    /// Out-of-order stash: per-source FIFO queues. mpsc preserves each
    /// producer's send order, so popping a source's queue front replays its
    /// stream in order even when a fast rank runs a whole collective ahead
    /// of a slow peer (a schedule the simtest perturbations make likely).
    stash: Vec<std::collections::VecDeque<Vec<T>>>,
    /// Schedule perturbation state ([`run_ranks_sched`]); `None` runs the
    /// friendly fixed schedule.
    sched: Option<RankSched>,
}

impl<T: Send> RankComm<T> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Elements sent so far by this rank (the validation counter).
    pub fn sent_elems(&self) -> u64 {
        self.sent_elems
    }

    /// Perturbation counters `(stalls, retries)` when running under
    /// [`run_ranks_sched`]; `None` on the friendly schedule.
    pub fn sched_stats(&self) -> Option<(u64, u64)> {
        self.sched.as_ref().map(|s| (s.stalls, s.retries))
    }

    /// Replay certificate of this rank's decision stream (see
    /// [`Schedule::trace_hash`]); `None` on the friendly schedule.
    pub fn sched_trace(&self) -> Option<u64> {
        self.sched.as_ref().map(|s| s.trace_hash())
    }

    /// Consumes one perturbation point from this rank's schedule — a
    /// `maybe_stall` identical to the one every send/receive performs.
    /// Long compute sections with order freedom (the engine backend's RMA
    /// epochs between fences) call this so the adversarial schedule can
    /// skew ranks *inside* the epoch, not just at its communication edges.
    /// A no-op on the friendly schedule.
    pub fn perturb_point(&mut self) {
        if let Some(rs) = self.sched.as_mut() {
            rs.maybe_stall();
        }
    }

    fn send_to(&mut self, dst: usize, data: Vec<T>) {
        self.sent_elems += data.len() as u64;
        if dst == self.rank {
            self.stash[dst].push_back(data);
            return;
        }
        match self.sched.as_mut() {
            None => self.senders[dst].send((self.rank, data)).expect("peer rank hung up"),
            Some(rs) => {
                // Perturbed path: stall before injecting, then model a
                // transport with bounded transient failures — try_send
                // until accepted, retrying (with yields) up to the budget,
                // then a blocking send. The payload is counted exactly once
                // above no matter how many attempts delivery took.
                rs.maybe_stall();
                let mut msg = (self.rank, data);
                let budget = rs.retry_budget();
                for _ in 0..budget {
                    match self.senders[dst].try_send(msg) {
                        Ok(()) => return,
                        Err(TrySendError::Full(m)) => {
                            msg = m;
                            rs.note_retry();
                            std::thread::yield_now();
                        }
                        Err(TrySendError::Disconnected(_)) => panic!("peer rank hung up"),
                    }
                }
                self.senders[dst].send(msg).expect("peer rank hung up");
            }
        }
    }

    fn recv_from(&mut self, src: usize) -> Vec<T> {
        if let Some(rs) = self.sched.as_mut() {
            rs.maybe_stall();
        }
        if let Some(msg) = self.stash[src].pop_front() {
            return msg;
        }
        loop {
            let (from, data) = self.receiver.recv().expect("peer rank hung up");
            if from == src {
                return data;
            }
            self.stash[from].push_back(data);
        }
    }

    /// Personalized all-to-all over the ranks in `group` (which must
    /// contain `self.rank`): element `sends[k]` goes to `group[k]`; returns
    /// what each group member sent here, in group order.
    ///
    /// Under a schedule ([`run_ranks_sched`]) the send and receive service
    /// orders are independently permuted per call — delivery *order* across
    /// the mesh is adversarial, while the returned vector stays in group
    /// order (matching MPI's buffer-placement semantics).
    pub fn alltoallv(&mut self, group: &[usize], sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(sends.len(), group.len());
        debug_assert!(group.contains(&self.rank));
        let (send_order, recv_order) = match self.sched.as_mut() {
            Some(rs) => (rs.permutation(group.len()), rs.permutation(group.len())),
            None => ((0..group.len()).collect(), (0..group.len()).collect()),
        };
        let mut sends: Vec<Option<Vec<T>>> = sends.into_iter().map(Some).collect();
        for &k in &send_order {
            let data = sends[k].take().expect("send slot consumed twice");
            self.send_to(group[k], data);
        }
        let mut out: Vec<Option<Vec<T>>> = (0..group.len()).map(|_| None).collect();
        for &k in &recv_order {
            out[k] = Some(self.recv_from(group[k]));
        }
        out.into_iter().map(|m| m.expect("recv slot not filled")).collect()
    }

    /// Allgather over `group`: everyone contributes `mine`, everyone
    /// receives all contributions in group order.
    ///
    /// The self-copy moves `mine` instead of cloning it — `|group| - 1`
    /// clones for the peers, none for this rank. The move still routes
    /// through [`RankComm::send_to`], so `sent_elems` counts the self-send
    /// exactly as the cost model does.
    pub fn allgatherv(&mut self, group: &[usize], mine: Vec<T>) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        let self_pos = group
            .iter()
            .position(|&r| r == self.rank)
            .expect("allgatherv group must contain the calling rank");
        let mut sends: Vec<Vec<T>> = group
            .iter()
            .enumerate()
            .map(|(k, _)| if k == self_pos { Vec::new() } else { mine.clone() })
            .collect();
        sends[self_pos] = mine;
        self.alltoallv(group, sends)
    }

    /// Gather onto `group[0]`: non-roots send, the root receives all (in
    /// group order); non-roots get an empty result.
    ///
    /// Implemented over [`RankComm::alltoallv`] so the collective fully
    /// synchronizes every member: a fire-and-forget non-root could otherwise
    /// race arbitrarily many collectives ahead of a slow peer and flood its
    /// inbox (the per-source stash keeps this correct, but unbounded skew
    /// is not a schedule a real gather exhibits).
    pub fn gather(&mut self, group: &[usize], mine: Vec<T>) -> Vec<Vec<T>> {
        let root = group[0];
        let mut sends: Vec<Vec<T>> = group.iter().map(|_| Vec::new()).collect();
        sends[0] = mine; // everything goes to the root; empties elsewhere
        let received = self.alltoallv(group, sends);
        if self.rank == root {
            received
        } else {
            Vec::new()
        }
    }
}

/// Runs `f` on `p` ranks (threads), each with its own [`RankComm`];
/// returns the per-rank results in rank order.
///
/// # Example
///
/// ```
/// use mcm_bsp::engine::run_ranks;
///
/// // 4 real ranks exchange their ids with an allgather.
/// let results = run_ranks::<u32, _, _>(4, |mut comm| {
///     let group: Vec<usize> = (0..4).collect();
///     comm.allgatherv(&group, vec![comm.rank() as u32])
/// });
/// assert_eq!(results[3][1], vec![1]);
/// ```
pub fn run_ranks<T, R, F>(p: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(RankComm<T>) -> R + Sync,
{
    run_ranks_inner(p, (0..p).map(|_| None).collect(), f)
}

/// Like [`run_ranks`], but every rank executes under a deterministic
/// schedule perturbation: rank `r` gets `sched.fork(r)`, which permutes its
/// collective send/receive service orders and injects stalls and bounded
/// send retries (see [`crate::sched`]). Payloads and [`RankComm::sent_elems`]
/// accounting are never altered — only *when* and *in what order* things
/// happen — so any divergence from the friendly schedule is a reordering
/// bug in the code under test. Replaying the same `sched` seed replays the
/// same per-rank decision streams.
pub fn run_ranks_sched<T, R, F>(p: usize, sched: &Schedule, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(RankComm<T>) -> R + Sync,
{
    let scheds = (0..p).map(|r| Some(RankSched::new(sched.fork(r as u64)))).collect();
    run_ranks_inner(p, scheds, f)
}

fn run_ranks_inner<T, R, F>(p: usize, scheds: Vec<Option<RankSched>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(RankComm<T>) -> R + Sync,
{
    assert!(p >= 1);
    assert_eq!(scheds.len(), p);
    // Build the mesh: one inbox per rank. std mpsc receivers are not
    // cloneable, so each rank's Receiver is *moved* into its thread while
    // the SyncSender side is cloned per peer.
    let mut senders: Vec<SyncSender<(usize, Vec<T>)>> = Vec::with_capacity(p);
    let mut receivers: Vec<Receiver<(usize, Vec<T>)>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = sync_channel(2 * p + 4);
        senders.push(s);
        receivers.push(r);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (receiver, sched)) in receivers.into_iter().zip(scheds).enumerate() {
            let senders = senders.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                // Trace spans recorded by this rank's body carry its rank id
                // (rank threads are joined before the driver collects the
                // trace, so their buffers are always flushed by then).
                mcm_obs::set_thread_rank(rank);
                // Untagged on purpose: the coordinating thread already
                // holds the kernel-tagged span for this collective, and
                // the measured breakdown must not count the work twice.
                let _span = mcm_obs::span("rank_session");
                let comm = RankComm {
                    rank,
                    p,
                    senders,
                    receiver,
                    sent_elems: 0,
                    stash: (0..p).map(|_| std::collections::VecDeque::new()).collect(),
                    sched,
                };
                f(comm)
            }));
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoallv_routes_point_to_point() {
        let results = run_ranks::<u32, _, _>(4, |mut comm| {
            let group: Vec<usize> = (0..4).collect();
            let me = comm.rank() as u32;
            // Rank r sends [r * 10 + dst] to each dst.
            let sends = (0..4).map(|dst| vec![me * 10 + dst as u32]).collect();
            let recvd = comm.alltoallv(&group, sends);
            (recvd, comm.sent_elems())
        });
        for (dst, (recvd, sent)) in results.into_iter().enumerate() {
            assert_eq!(sent, 4);
            for (src, msg) in recvd.into_iter().enumerate() {
                assert_eq!(msg, vec![src as u32 * 10 + dst as u32]);
            }
        }
    }

    #[test]
    fn allgatherv_replicates() {
        let results = run_ranks::<u32, _, _>(3, |mut comm| {
            let group: Vec<usize> = (0..3).collect();
            comm.allgatherv(&group, vec![comm.rank() as u32; comm.rank() + 1])
        });
        for gathered in results {
            assert_eq!(gathered[0], vec![0]);
            assert_eq!(gathered[1], vec![1, 1]);
            assert_eq!(gathered[2], vec![2, 2, 2]);
        }
    }

    #[test]
    fn subgroup_collectives_do_not_interfere() {
        // Two disjoint groups {0,1} and {2,3} run alltoallv concurrently.
        let results = run_ranks::<u32, _, _>(4, |mut comm| {
            let base = (comm.rank() / 2) * 2;
            let group = vec![base, base + 1];
            let sends = group.iter().map(|&d| vec![(comm.rank() * 4 + d) as u32]).collect();
            comm.alltoallv(&group, sends)
        });
        assert_eq!(results[0], vec![vec![0], vec![4]]);
        assert_eq!(results[3], vec![vec![11], vec![15]]);
    }

    #[test]
    fn allgatherv_counts_self_send() {
        // Regression for the self-copy optimization: `mine` is moved into
        // the self slot instead of cloned, but sent_elems must still count
        // all |group| copies (the cost model's allgather volume includes
        // the local one).
        let results = run_ranks::<u32, _, _>(3, |mut comm| {
            let group: Vec<usize> = (0..3).collect();
            let mine = vec![comm.rank() as u32; 5];
            let gathered = comm.allgatherv(&group, mine);
            (gathered, comm.sent_elems())
        });
        for (gathered, sent) in results {
            assert_eq!(sent, 3 * 5);
            assert_eq!(gathered.len(), 3);
            for (src, msg) in gathered.into_iter().enumerate() {
                assert_eq!(msg, vec![src as u32; 5]);
            }
        }
    }

    #[test]
    fn gather_collects_on_root() {
        let results = run_ranks::<u32, _, _>(3, |mut comm| {
            let group: Vec<usize> = (0..3).collect();
            comm.gather(&group, vec![comm.rank() as u32 + 100])
        });
        assert_eq!(results[0], vec![vec![100], vec![101], vec![102]]);
        assert!(results[1].is_empty());
        assert!(results[2].is_empty());
    }

    #[test]
    fn consecutive_gathers_do_not_race() {
        // Regression: a fire-and-forget non-root gather let a fast rank's
        // second collective overtake its first message, tripping the
        // single-slot stash on the root. The alltoallv-based gather
        // synchronizes everyone.
        let results = run_ranks::<u32, _, _>(3, |mut comm| {
            let group: Vec<usize> = (0..3).collect();
            let a = comm.gather(&group, vec![comm.rank() as u32]);
            let b = comm.gather(&group, vec![comm.rank() as u32 + 10]);
            (a, b)
        });
        assert_eq!(results[0].0, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(results[0].1, vec![vec![10], vec![11], vec![12]]);
    }

    #[test]
    fn single_rank_loopback() {
        let results = run_ranks::<u8, _, _>(1, |mut comm| comm.alltoallv(&[0], vec![vec![42]]));
        assert_eq!(results[0], vec![vec![42]]);
    }

    #[test]
    fn scheduled_collectives_are_oblivious_to_the_schedule() {
        // Under arbitrary send/recv service orders, stalls and retries, the
        // collectives must return exactly the friendly-schedule results and
        // count exactly the same sent elements.
        let body = |mut comm: RankComm<u32>| {
            let group: Vec<usize> = (0..4).collect();
            let me = comm.rank() as u32;
            let sends = (0..4).map(|dst| vec![me * 10 + dst as u32, me]).collect();
            let a2a = comm.alltoallv(&group, sends);
            let ag = comm.allgatherv(&group, vec![me; 3]);
            let g = comm.gather(&group, vec![me + 7]);
            (a2a, ag, g, comm.sent_elems())
        };
        let friendly = run_ranks::<u32, _, _>(4, body);
        for seed in [0u64, 1, 2, 0xFEED] {
            let sched = Schedule::new(seed);
            let perturbed = run_ranks_sched::<u32, _, _>(4, &sched, body);
            assert_eq!(perturbed, friendly, "seed {seed}");
        }
    }

    #[test]
    fn scheduled_runs_replay_from_their_seed() {
        let body = |mut comm: RankComm<u32>| {
            let group: Vec<usize> = (0..3).collect();
            for round in 0..5u32 {
                let sends = (0..3).map(|d| vec![comm.rank() as u32 + d as u32 + round]).collect();
                let _ = comm.alltoallv(&group, sends);
            }
            (comm.sent_elems(), comm.sched_stats(), comm.sched_trace())
        };
        let sched = Schedule::new(99);
        let a = run_ranks_sched::<u32, _, _>(3, &sched, body);
        let b = run_ranks_sched::<u32, _, _>(3, &sched, body);
        // Decision streams (trace hashes) are a pure function of the seed.
        for rank in 0..3 {
            assert!(a[rank].1.is_some() && a[rank].2.is_some());
            assert_eq!(a[rank].2, b[rank].2, "rank {rank} schedule diverged on replay");
            assert_eq!(a[rank].0, b[rank].0);
        }
        let friendly = run_ranks::<u32, _, _>(3, body);
        assert!(friendly[0].1.is_none() && friendly[0].2.is_none());
    }
}
