//! Remote Memory Access cost accounting.
//!
//! Algorithm 4 of the paper augments each discovered path *asynchronously*:
//! the owning process walks its path across the distributed `mate`/parent
//! vectors with `MPI_Get`, `MPI_Put`, and a merged `MPI_Fetch_and_op` — three
//! one-sided calls per path per level, `3(α+β)` each iteration.
//!
//! In the simulator the underlying dense vectors live in shared memory, so
//! the *data* side of an RMA op is a plain read/write (safe: the paths are
//! vertex-disjoint by construction, §III-C). What must be modeled carefully
//! is the *time*: each origin rank issues its own independent stream of
//! calls, and the modeled elapsed time of the asynchronous epoch is the
//! maximum over origin ranks of their accumulated call costs — not a
//! superstep sum.
//!
//! [`RmaWindow`] executes ops immediately in program order — one fixed,
//! friendly schedule. The simtest harness ([`crate::sched`]) provides the
//! adversarial counterpart: [`crate::sched::SimWindow`] services concurrent
//! origin streams in a seed-chosen permuted order, so the disjointness
//! invariants the friendly schedule never stresses get exercised under
//! every interleaving a real RMA epoch could produce.

use crate::cost::CostModel;

/// Per-origin-rank accumulated RMA cost within one epoch.
#[derive(Clone, Debug)]
pub struct RmaTally {
    per_rank: Vec<f64>,
    ops: u64,
}

impl RmaTally {
    /// An empty tally for `p` origin ranks.
    pub fn new(p: usize) -> Self {
        Self { per_rank: vec![0.0; p], ops: 0 }
    }

    /// Records one one-sided call (`MPI_Get`/`MPI_Put`/`MPI_Fetch_and_op`)
    /// issued by `origin`.
    #[inline]
    pub fn op(&mut self, origin: usize, cost: &CostModel) {
        self.per_rank[origin] += cost.rma_op();
        self.ops += 1;
    }

    /// Records `n` one-sided calls issued by `origin`.
    #[inline]
    pub fn ops(&mut self, origin: usize, n: u64, cost: &CostModel) {
        self.per_rank[origin] += n as f64 * cost.rma_op();
        self.ops += n;
    }

    /// Total number of one-sided calls in the epoch.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.ops
    }

    /// Modeled elapsed time of the epoch: the slowest origin rank (the
    /// asynchronous streams overlap perfectly otherwise).
    pub fn elapsed(&self) -> f64 {
        self.per_rank.iter().copied().fold(0.0, f64::max)
    }
}

/// A one-sided access window over a distributed dense vector, in the style
/// of `MPI_Win`: every [`RmaWindow::get`], [`RmaWindow::put`], and
/// [`RmaWindow::fetch_and_put`] is one one-sided call charged to the
/// issuing origin rank's tally. The vector is block-distributed over `p`
/// ranks ([`crate::collectives::balanced_owner`]); because the simulator's
/// storage is shared, the data side is a plain access — what the window
/// adds is the per-origin cost stream and the owner bookkeeping.
pub struct RmaWindow<'a> {
    data: &'a mut mcm_sparse::DenseVec,
    tally: &'a mut RmaTally,
    cost: CostModel,
}

impl<'a> RmaWindow<'a> {
    /// Opens a window over `data`, charging calls into `tally`.
    pub fn new(
        data: &'a mut mcm_sparse::DenseVec,
        tally: &'a mut RmaTally,
        cost: CostModel,
    ) -> Self {
        Self { data, tally, cost }
    }

    /// `MPI_Get`: read one element from its owner.
    #[inline]
    pub fn get(&mut self, origin: usize, idx: mcm_sparse::Vidx) -> mcm_sparse::Vidx {
        self.tally.op(origin, &self.cost);
        self.data.get(idx)
    }

    /// `MPI_Put`: write one element at its owner.
    #[inline]
    pub fn put(&mut self, origin: usize, idx: mcm_sparse::Vidx, v: mcm_sparse::Vidx) {
        self.tally.op(origin, &self.cost);
        self.data.set(idx, v);
    }

    /// `MPI_Fetch_and_op` with replace: atomically swap in `v`, returning
    /// the previous value — the merged read-modify-write the paper's
    /// Algorithm 4 analysis counts as a single call.
    #[inline]
    pub fn fetch_and_put(
        &mut self,
        origin: usize,
        idx: mcm_sparse::Vidx,
        v: mcm_sparse::Vidx,
    ) -> mcm_sparse::Vidx {
        self.tally.op(origin, &self.cost);
        let prev = self.data.get(idx);
        self.data.set(idx, v);
        prev
    }
}

/// Adapter connecting this module's per-origin cost accounting to the
/// backend-agnostic [`crate::comm::RmaWin`] surface: a multi-vector window
/// whose every one-sided call is charged to a fixed origin rank's
/// [`RmaTally`]. Lets [`crate::comm::RmaTask`] op streams (the path
/// walkers) run under the epoch-elapsed accounting of this module without
/// knowing about it.
pub struct TalliedWin<'a> {
    vecs: Vec<&'a mut mcm_sparse::DenseVec>,
    tally: &'a mut RmaTally,
    cost: CostModel,
    origin: usize,
}

impl<'a> TalliedWin<'a> {
    /// Opens a window over `vecs` charging calls by `origin` into `tally`.
    pub fn new(
        vecs: Vec<&'a mut mcm_sparse::DenseVec>,
        tally: &'a mut RmaTally,
        cost: CostModel,
        origin: usize,
    ) -> Self {
        Self { vecs, tally, cost, origin }
    }

    /// Switches the issuing origin rank (e.g. between task streams).
    pub fn set_origin(&mut self, origin: usize) {
        self.origin = origin;
    }
}

impl crate::comm::RmaWin for TalliedWin<'_> {
    fn get(&mut self, win: usize, idx: mcm_sparse::Vidx) -> mcm_sparse::Vidx {
        self.tally.op(self.origin, &self.cost);
        self.vecs[win].get(idx)
    }

    fn put(&mut self, win: usize, idx: mcm_sparse::Vidx, v: mcm_sparse::Vidx) {
        self.tally.op(self.origin, &self.cost);
        self.vecs[win].set(idx, v);
    }

    fn fetch_and_put(
        &mut self,
        win: usize,
        idx: mcm_sparse::Vidx,
        v: mcm_sparse::Vidx,
    ) -> mcm_sparse::Vidx {
        self.tally.op(self.origin, &self.cost);
        let prev = self.vecs[win].get(idx);
        self.vecs[win].set(idx, v);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::DenseVec;

    #[test]
    fn window_ops_charge_the_origin() {
        let cost = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 0.0, gamma: 0.0 };
        let mut v = DenseVec::nil(8);
        let mut tally = RmaTally::new(2);
        let mut win = RmaWindow::new(&mut v, &mut tally, cost);
        win.put(0, 3, 7);
        assert_eq!(win.get(1, 3), 7);
        let prev = win.fetch_and_put(0, 3, 9);
        assert_eq!(prev, 7);
        assert_eq!(win.get(1, 3), 9);
        assert_eq!(tally.total_ops(), 4);
        // Origins 0 and 1 issued two ops each: overlapped epochs.
        assert!((tally.elapsed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elapsed_is_max_over_origins() {
        let cost = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 0.0, gamma: 0.0 };
        let mut t = RmaTally::new(3);
        t.ops(0, 5, &cost);
        t.ops(1, 2, &cost);
        t.op(2, &cost);
        assert_eq!(t.total_ops(), 8);
        assert!((t.elapsed() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_epoch_has_zero_elapsed() {
        let t = RmaTally::new(4);
        assert_eq!(t.elapsed(), 0.0);
        assert_eq!(t.total_ops(), 0);
    }

    #[test]
    fn tallied_win_drives_rma_tasks_with_origin_accounting() {
        use crate::comm::{RmaTask, RmaWin};

        /// One swap on a shared slot, then done.
        struct OneSwap(mcm_sparse::Vidx);
        impl RmaTask for OneSwap {
            fn step(&mut self, win: &mut dyn RmaWin) -> bool {
                let _ = win.fetch_and_put(0, 0, self.0);
                false
            }
        }

        let cost = CostModel { alpha: 1.0, alpha_soft: 0.0, beta: 0.0, gamma: 0.0 };
        let mut slot = DenseVec::nil(1);
        let mut tally = RmaTally::new(2);
        {
            let mut win = TalliedWin::new(vec![&mut slot], &mut tally, cost, 0);
            let mut a = OneSwap(7);
            while a.step(&mut win) {}
            win.set_origin(1);
            let mut b = OneSwap(9);
            while b.step(&mut win) {}
            assert_eq!(win.get(0, 0), 9); // one more op charged to origin 1
        }
        assert_eq!(slot.get(0), 9);
        assert_eq!(tally.total_ops(), 3);
        // Origin 0 issued 1 call, origin 1 issued 2: elapsed is the max.
        assert!((tally.elapsed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_triplet_cost() {
        // "3 RMA calls per processor per iteration ... 3(α+β)"
        let cost = CostModel { alpha: 2.0, alpha_soft: 0.0, beta: 0.5, gamma: 0.0 };
        let mut t = RmaTally::new(1);
        t.ops(0, 3, &cost);
        assert!((t.elapsed() - 3.0 * 2.5).abs() < 1e-12);
    }
}
