//! Backend-agnostic communication layer for MCM-DIST.
//!
//! The paper's Algorithms 2–4 are written purely in terms of collective
//! primitives — expand/fold SpMV, personalized all-to-alls (INVERT),
//! allreduce emptiness checks, and one-sided RMA path walks. This module
//! abstracts that surface into the [`Communicator`] trait so the whole
//! pipeline in `mcm-core` is written once and executes on either backend:
//!
//! * **Simulator** ([`DistCtx`]) — the cost-model backend. Collectives
//!   route data locally and charge the α–β–γ model exactly as the
//!   hard-wired kernels always did, so figure harnesses reproduce their
//!   modeled-time output bit for bit.
//! * **Engine** ([`EngineComm`]) — `p` real ranks (OS threads) over the
//!   [`crate::engine::RankComm`] channel mesh, promoted from a per-kernel
//!   validation harness to a first-class execution backend. Every
//!   collective moves real message buffers; RMA epochs run on atomic
//!   windows ([`mcm_sparse::DenseVec::as_atomic_view`]). The same cost
//!   formulas are still charged (from the same observed volumes), so the
//!   two backends stay account-comparable.
//!
//! RMA is abstracted the same way: origins implement [`RmaTask`] against
//! the [`RmaWin`] one-sided surface (get/put/fetch_and_put), and
//! [`Communicator::rma_epoch`] runs an exposure epoch — through the
//! schedule-driven [`SimWindow`] interleaver on the simulator, or through
//! per-rank atomic windows closed by a zero-payload all-to-all fence on
//! the engine. The simtest [`Schedule`] perturbs both: the simulator's
//! epoch consumes the identical decision stream the old hard-wired path
//! did (replay seeds stay valid), and the engine additionally perturbs
//! rank skew *inside* the epoch via [`RankComm::perturb_point`], with the
//! closing fence exercising the per-source FIFO stash.
//!
//! `bcast` completes the MPI-style surface for service-layer callers
//! (e.g. distributing configuration epochs); MCM-DIST itself never
//! broadcasts, so the simulator pipeline's modeled time is unchanged.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::collectives::max_count;
use crate::ctx::DistCtx;
use crate::distmat::{DistMatrix, SpmvPlan};
use crate::engine::{run_ranks, run_ranks_sched, RankComm};
use crate::machine::MachineConfig;
use crate::sched::{FaultPlan, Schedule, SimWindow};
use crate::timers::Kernel;
use mcm_sparse::{DenseVec, SpVec, Vidx, NIL};

/// Which execution backend a [`Communicator`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Cost-model simulator: local data routing + modeled time.
    Simulator,
    /// Thread-per-rank channel-mesh engine: real message passing.
    Engine,
    /// Shared-memory backend: one address space, collectives as shared-arena
    /// exchanges, SpMSpV fused with the communication epoch
    /// ([`crate::shared::SharedComm`]).
    Shared,
}

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions (the `f ≠ φ` emptiness checks).
    Sum,
    /// Maximum contribution.
    Max,
    /// Minimum contribution.
    Min,
}

impl ReduceOp {
    /// Folds an iterator of per-rank contributions.
    pub fn fold(self, it: impl Iterator<Item = u64>) -> u64 {
        match self {
            ReduceOp::Sum => it.sum(),
            ReduceOp::Max => it.max().unwrap_or(0),
            ReduceOp::Min => it.min().unwrap_or(u64::MAX),
        }
    }
}

/// One-sided window surface: `MPI_Get` / `MPI_Put` / `MPI_Fetch_and_op`
/// (with replace), over a set of window-exposed vectors indexed by `win`.
pub trait RmaWin {
    /// `MPI_Get`.
    fn get(&mut self, win: usize, idx: Vidx) -> Vidx;
    /// `MPI_Put`.
    fn put(&mut self, win: usize, idx: Vidx, v: Vidx);
    /// `MPI_Fetch_and_op` with replace: atomically swap in `v`, return the
    /// previous value.
    fn fetch_and_put(&mut self, win: usize, idx: Vidx, v: Vidx) -> Vidx;
}

impl RmaWin for SimWindow<'_> {
    fn get(&mut self, win: usize, idx: Vidx) -> Vidx {
        SimWindow::get(self, win, idx)
    }
    fn put(&mut self, win: usize, idx: Vidx, v: Vidx) {
        SimWindow::put(self, win, idx, v)
    }
    fn fetch_and_put(&mut self, win: usize, idx: Vidx, v: Vidx) -> Vidx {
        SimWindow::fetch_and_put(self, win, idx, v)
    }
}

/// A concurrent origin's op stream, driven one one-sided call at a time by
/// [`Communicator::rma_epoch`]. The backend-agnostic counterpart of
/// [`crate::sched::OriginTask`].
pub trait RmaTask {
    /// Issues the next one-sided call; `false` = this origin is done.
    fn step(&mut self, win: &mut dyn RmaWin) -> bool;
}

/// Engine-backend RMA window: shared atomic views of the exposed vectors.
/// All accesses are `SeqCst`, so a `fetch_and_put` is a real atomic swap —
/// the property Algorithm 4's disjointness argument needs under true
/// thread concurrency. Honors [`FaultPlan::drop_fetch`] like [`SimWindow`]
/// so fault-injection sweeps cover the engine path too.
pub struct AtomicWin<'a> {
    vecs: &'a [&'a [AtomicU32]],
    fault: FaultPlan,
    ops: u64,
}

impl<'a> AtomicWin<'a> {
    /// Opens a window over shared atomic views.
    pub fn new(vecs: &'a [&'a [AtomicU32]], fault: FaultPlan) -> Self {
        Self { vecs, fault, ops: 0 }
    }

    /// One-sided calls issued through this origin's window handle.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

impl RmaWin for AtomicWin<'_> {
    fn get(&mut self, win: usize, idx: Vidx) -> Vidx {
        self.ops += 1;
        self.vecs[win][idx as usize].load(Ordering::SeqCst)
    }
    fn put(&mut self, win: usize, idx: Vidx, v: Vidx) {
        self.ops += 1;
        self.vecs[win][idx as usize].store(v, Ordering::SeqCst);
    }
    fn fetch_and_put(&mut self, win: usize, idx: Vidx, v: Vidx) -> Vidx {
        self.ops += 1;
        let prev = self.vecs[win][idx as usize].swap(v, Ordering::SeqCst);
        if self.fault.drop_fetch {
            return NIL;
        }
        prev
    }
}

/// Wraps an [`RmaWin`], counting the one-sided calls issued through it —
/// the per-epoch RMA op metric on the simulator and shared backends
/// ([`AtomicWin`] counts natively on the engine).
pub(crate) struct CountingWin<'w, W: RmaWin> {
    pub(crate) inner: &'w mut W,
    pub(crate) ops: u64,
}

impl<W: RmaWin> RmaWin for CountingWin<'_, W> {
    fn get(&mut self, win: usize, idx: Vidx) -> Vidx {
        self.ops += 1;
        self.inner.get(win, idx)
    }
    fn put(&mut self, win: usize, idx: Vidx, v: Vidx) {
        self.ops += 1;
        self.inner.put(win, idx, v)
    }
    fn fetch_and_put(&mut self, win: usize, idx: Vidx, v: Vidx) -> Vidx {
        self.ops += 1;
        self.inner.fetch_and_put(win, idx, v)
    }
}

/// Records one completed RMA exposure epoch and its one-sided op count.
#[inline]
pub(crate) fn record_rma_epoch(backend: &'static str, ops: u64) {
    if mcm_obs::metrics_enabled() {
        let labels = [("backend", backend)];
        mcm_obs::counter_add("mcm_rma_epochs_total", &labels, 1);
        mcm_obs::counter_add("mcm_rma_ops_total", &labels, ops);
    }
}

/// Interleaves RMA task streams under a schedule-chosen service order —
/// the [`RmaTask`] twin of [`crate::sched::run_interleaved`], consuming
/// picks from the same decision stream.
pub(crate) fn interleave_tasks<W: RmaWin, T: RmaTask>(
    win: &mut W,
    sched: &mut Schedule,
    tasks: &mut [T],
) -> u64 {
    let mut live: Vec<usize> = (0..tasks.len()).collect();
    let mut steps = 0u64;
    while !live.is_empty() {
        let k = sched.pick(live.len());
        steps += 1;
        if !tasks[live[k]].step(win) {
            live.swap_remove(k);
        }
    }
    steps
}

/// The backend-agnostic communication surface MCM-DIST is written against.
///
/// Data layout convention: `sends[src][dst]` on input, `recvd[dst][src]`
/// on output — every method presents the *global* exchange, with each
/// backend deciding how to execute it (local transpose + cost charge on
/// the simulator, a real channel-mesh collective per rank on the engine).
/// `words_per_elem` converts element counts to the 8-byte words the cost
/// model charges (2 for `(index, value)` pairs, 1 for bare indices).
pub trait Communicator {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The accounting context (grid, cost model, timers, schedule).
    fn ctx(&self) -> &DistCtx;

    /// Mutable accounting context.
    fn ctx_mut(&mut self) -> &mut DistCtx;

    /// Process count `p`.
    fn p(&self) -> usize {
        self.ctx().p()
    }

    /// Threads per process `t`.
    fn threads(&self) -> usize {
        self.ctx().threads()
    }

    /// The **physical** grid this backend executes matrix blocks on —
    /// usually the accounting grid itself, but the shared-memory backend
    /// executes everything on a single `1 × 1` block while still charging
    /// the logical `√p × √p` decomposition. Matrix assembly must use this
    /// grid so blocks match the execution layout.
    fn exec_grid(&self) -> (usize, usize) {
        let g = &self.ctx().machine.grid;
        (g.pr, g.pc)
    }

    /// Personalized all-to-all: routes `sends[src][dst]` to
    /// `recvd[dst][src]`, charging the bottleneck rank's volume.
    fn alltoallv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        sends: Vec<Vec<Vec<T>>>,
    ) -> Vec<Vec<Vec<T>>>;

    /// Allgather: every rank contributes `contribs[rank]`; every rank ends
    /// with all contributions in rank order (returned once — the backends
    /// verify replication, the caller sees one copy).
    fn allgatherv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        contribs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>>;

    /// Allreduce of one control word per rank (NOT work-scaled — control
    /// traffic does not grow with the matrix).
    fn allreduce(&mut self, kernel: Kernel, per_rank: &[u64], op: ReduceOp) -> u64;

    /// Broadcast `data` from `root` to every rank. Service-layer
    /// completeness; MCM-DIST never calls this (§IV needs no broadcast).
    fn bcast<T: Send + Clone>(&mut self, kernel: Kernel, root: usize, data: Vec<T>) -> Vec<T>;

    /// Distributed semiring SpMSpV `y = A ⊗ x` (expand allgather → local
    /// multiply → fold alltoallv), reusing `plan`'s per-block buffers.
    /// Deterministic on both backends: per-row candidates fold in
    /// ascending global column order.
    fn spmspv<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync;

    /// [`Communicator::spmspv`] with a commutative-monoid accumulator
    /// (`combine`) instead of a selection.
    fn spmspv_monoid<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync;

    /// One RMA exposure epoch: exposes `wins`, drives every task's op
    /// stream to completion, closes the epoch (a fence on the engine).
    /// Returns the interleaver's service-step count under a perturbed
    /// schedule, 0 on the friendly schedule.
    fn rma_epoch<W: RmaTask + Send>(
        &mut self,
        kernel: Kernel,
        wins: Vec<&mut DenseVec>,
        tasks: &mut [W],
    ) -> u64;
}

// ---------------------------------------------------------------------------
// Simulator backend
// ---------------------------------------------------------------------------

impl Communicator for DistCtx {
    fn kind(&self) -> BackendKind {
        BackendKind::Simulator
    }

    fn ctx(&self) -> &DistCtx {
        self
    }

    fn ctx_mut(&mut self) -> &mut DistCtx {
        self
    }

    fn alltoallv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        sends: Vec<Vec<Vec<T>>>,
    ) -> Vec<Vec<Vec<T>>> {
        let _span = mcm_obs::kernel_span("alltoallv", kernel.name());
        let p = self.p();
        assert_eq!(sends.len(), p, "one send row per rank");
        let mut send_tot = vec![0u64; p];
        let mut recv_tot = vec![0u64; p];
        for (src, row) in sends.iter().enumerate() {
            assert_eq!(row.len(), p, "one send slot per destination");
            for (dst, msg) in row.iter().enumerate() {
                send_tot[src] += msg.len() as u64;
                recv_tot[dst] += msg.len() as u64;
            }
        }
        let bottleneck = max_count(&send_tot).max(max_count(&recv_tot));
        self.charge_alltoallv(kernel, p, words_per_elem * bottleneck);
        // Local transpose: [src][dst] → [dst][src].
        let mut recvd: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for row in sends {
            for (dst, msg) in row.into_iter().enumerate() {
                recvd[dst].push(msg);
            }
        }
        recvd
    }

    fn allgatherv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        contribs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let _span = mcm_obs::kernel_span("allgatherv", kernel.name());
        let p = self.p();
        assert_eq!(contribs.len(), p, "one contribution per rank");
        let total: u64 = contribs.iter().map(|c| c.len() as u64).sum();
        self.charge_allgather(kernel, p, words_per_elem * total);
        contribs
    }

    fn allreduce(&mut self, kernel: Kernel, per_rank: &[u64], op: ReduceOp) -> u64 {
        let _span = mcm_obs::kernel_span("allreduce", kernel.name());
        assert_eq!(per_rank.len(), self.p(), "one contribution per rank");
        self.charge_allreduce(kernel, 1);
        op.fold(per_rank.iter().copied())
    }

    fn bcast<T: Send + Clone>(&mut self, kernel: Kernel, root: usize, data: Vec<T>) -> Vec<T> {
        let _span = mcm_obs::kernel_span("bcast", kernel.name());
        assert!(root < self.p(), "bcast root out of range");
        self.charge_bcast(kernel, data.len() as u64);
        data
    }

    fn spmspv<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv", kernel.name());
        a.spmspv_with_plan(self, kernel, plan, x, mul, take_incoming)
    }

    fn spmspv_monoid<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv_monoid", kernel.name());
        a.spmspv_monoid_with_plan(self, kernel, plan, x, mul, combine)
    }

    fn rma_epoch<W: RmaTask + Send>(
        &mut self,
        kernel: Kernel,
        wins: Vec<&mut DenseVec>,
        tasks: &mut [W],
    ) -> u64 {
        let _span = mcm_obs::kernel_span("rma_epoch", kernel.name());
        match self.sched.take() {
            Some(mut sched) => {
                // Adversarial interleaving, consuming the schedule's pick
                // stream exactly like the pre-trait epochs did — replay
                // seeds and trace hashes stay valid.
                let (steps, ops) = {
                    let mut win = SimWindow::new(wins, sched.fault());
                    let mut cwin = CountingWin { inner: &mut win, ops: 0 };
                    let steps = interleave_tasks(&mut cwin, &mut sched, tasks);
                    (steps, cwin.ops)
                };
                self.sched = Some(sched);
                record_rma_epoch("sim", ops);
                steps
            }
            None => {
                // Friendly schedule: origins complete in program order.
                let mut win = SimWindow::new(wins, FaultPlan::default());
                let mut cwin = CountingWin { inner: &mut win, ops: 0 };
                for t in tasks.iter_mut() {
                    while t.step(&mut cwin) {}
                }
                record_rma_epoch("sim", cwin.ops);
                0
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine backend
// ---------------------------------------------------------------------------

/// The thread-per-rank execution backend: every collective runs as a real
/// exchange over the [`RankComm`] channel mesh, with `p` ranks on a square
/// `√p × √p` grid and `threads` intra-rank workers for local multiplies.
///
/// The embedded [`DistCtx`] mirrors the simulator's cost accounting from
/// the volumes the engine actually moves, so per-kernel call counts and
/// modeled times stay comparable across backends. Install a [`Schedule`]
/// with [`EngineComm::with_schedule`] to run every collective and RMA
/// epoch under deterministic adversarial perturbation (each epoch forks a
/// decorrelated per-rank stream).
///
/// # Example
///
/// ```
/// use mcm_bsp::comm::{Communicator, EngineComm, ReduceOp};
/// use mcm_bsp::Kernel;
///
/// let mut eng = EngineComm::new(4, 1);
/// let total = eng.allreduce(Kernel::Other, &[1, 2, 3, 4], ReduceOp::Sum);
/// assert_eq!(total, 10);
/// ```
pub struct EngineComm {
    ctx: DistCtx,
    /// Monotonic collective/epoch counter; decorrelates the schedule fork
    /// each session runs under.
    epoch: u64,
}

impl EngineComm {
    /// An engine over `p` ranks (must be a perfect square — the 2D
    /// SpMV grid) with `threads` workers per rank.
    pub fn new(p: usize, threads: usize) -> Self {
        let dim = (p as f64).sqrt().round() as usize;
        assert!(dim * dim == p && p >= 1, "engine backend needs a square rank count, got {p}");
        assert!(threads >= 1, "at least one worker thread per rank");
        Self { ctx: DistCtx::new(MachineConfig::hybrid(dim, threads)), epoch: 0 }
    }

    /// Installs a simtest schedule: every subsequent collective and RMA
    /// epoch runs under deterministic per-rank perturbation forked from
    /// `sched` (see [`crate::engine::run_ranks_sched`]).
    pub fn with_schedule(mut self, sched: Schedule) -> Self {
        self.ctx.sched = Some(sched);
        self
    }

    /// Runs one engine session: `f` on every rank, under this backend's
    /// schedule (if any), each session forking a fresh decorrelated
    /// per-rank decision stream.
    pub(crate) fn session<T, R, F>(&mut self, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(RankComm<T>) -> R + Sync,
    {
        let p = self.ctx.p();
        self.epoch += 1;
        match self.ctx.sched.as_ref() {
            Some(s) => run_ranks_sched(p, &s.fork(0xE9C0_11EC ^ self.epoch), f),
            None => run_ranks(p, f),
        }
    }
}

impl Communicator for EngineComm {
    fn kind(&self) -> BackendKind {
        BackendKind::Engine
    }

    fn ctx(&self) -> &DistCtx {
        &self.ctx
    }

    fn ctx_mut(&mut self) -> &mut DistCtx {
        &mut self.ctx
    }

    fn alltoallv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        sends: Vec<Vec<Vec<T>>>,
    ) -> Vec<Vec<Vec<T>>> {
        let _span = mcm_obs::kernel_span("alltoallv", kernel.name());
        let p = self.ctx.p();
        assert_eq!(sends.len(), p, "one send row per rank");
        let mut send_tot = vec![0u64; p];
        let mut recv_tot = vec![0u64; p];
        for (src, row) in sends.iter().enumerate() {
            assert_eq!(row.len(), p, "one send slot per destination");
            for (dst, msg) in row.iter().enumerate() {
                send_tot[src] += msg.len() as u64;
                recv_tot[dst] += msg.len() as u64;
            }
        }
        let bottleneck = max_count(&send_tot).max(max_count(&recv_tot));
        self.ctx.charge_alltoallv(kernel, p, words_per_elem * bottleneck);

        let slots: Vec<Mutex<Option<Vec<Vec<T>>>>> =
            sends.into_iter().map(|row| Mutex::new(Some(row))).collect();
        let group: Vec<usize> = (0..p).collect();
        self.session::<T, _, _>(|mut comm| {
            let mine =
                slots[comm.rank()].lock().unwrap().take().expect("rank input consumed twice");
            comm.alltoallv(&group, mine)
        })
    }

    fn allgatherv<T: Send + Clone>(
        &mut self,
        kernel: Kernel,
        words_per_elem: u64,
        contribs: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let _span = mcm_obs::kernel_span("allgatherv", kernel.name());
        let p = self.ctx.p();
        assert_eq!(contribs.len(), p, "one contribution per rank");
        let total: u64 = contribs.iter().map(|c| c.len() as u64).sum();
        self.ctx.charge_allgather(kernel, p, words_per_elem * total);

        let slots: Vec<Mutex<Option<Vec<T>>>> =
            contribs.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let group: Vec<usize> = (0..p).collect();
        let mut per_rank = self.session::<T, _, _>(|mut comm| {
            let mine =
                slots[comm.rank()].lock().unwrap().take().expect("rank input consumed twice");
            comm.allgatherv(&group, mine)
        });
        // Every rank received an identical replica; hand the caller one.
        per_rank.swap_remove(0)
    }

    fn allreduce(&mut self, kernel: Kernel, per_rank: &[u64], op: ReduceOp) -> u64 {
        let _span = mcm_obs::kernel_span("allreduce", kernel.name());
        let p = self.ctx.p();
        assert_eq!(per_rank.len(), p, "one contribution per rank");
        self.ctx.charge_allreduce(kernel, 1);
        let group: Vec<usize> = (0..p).collect();
        let mut results = self.session::<u64, _, _>(|mut comm| {
            let gathered = comm.allgatherv(&group, vec![per_rank[comm.rank()]]);
            op.fold(gathered.into_iter().flatten())
        });
        let out = results.swap_remove(0);
        debug_assert!(results.iter().all(|&r| r == out), "allreduce replicas diverged");
        out
    }

    fn bcast<T: Send + Clone>(&mut self, kernel: Kernel, root: usize, data: Vec<T>) -> Vec<T> {
        let _span = mcm_obs::kernel_span("bcast", kernel.name());
        let p = self.ctx.p();
        assert!(root < p, "bcast root out of range");
        self.ctx.charge_bcast(kernel, data.len() as u64);
        let slot = Mutex::new(Some(data));
        let group: Vec<usize> = (0..p).collect();
        let mut per_rank = self.session::<T, _, _>(|mut comm| {
            // An alltoallv where only the root's row is non-empty is a
            // (naive, full-mesh) broadcast; the charge above models the
            // binomial tree a real MPI_Bcast would use.
            let mine: Vec<Vec<T>> = if comm.rank() == root {
                let payload = slot.lock().unwrap().take().expect("root payload consumed twice");
                let mut rows: Vec<Vec<T>> = (0..p - 1).map(|_| payload.clone()).collect();
                rows.push(payload);
                rows.rotate_right(p - 1 - root);
                debug_assert_eq!(rows.len(), p);
                rows
            } else {
                (0..p).map(|_| Vec::new()).collect()
            };
            let mut recvd = comm.alltoallv(&group, mine);
            recvd.swap_remove(root)
        });
        per_rank.swap_remove(0)
    }

    fn spmspv<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        take_incoming: impl Fn(&U, &U) -> bool + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv", kernel.name());
        a.spmspv_mesh(self, kernel, plan, x, mul, take_incoming)
    }

    fn spmspv_monoid<T, U>(
        &mut self,
        a: &DistMatrix,
        kernel: Kernel,
        plan: &mut SpmvPlan<T, U>,
        x: &SpVec<T>,
        mul: impl Fn(Vidx, &T) -> U + Sync,
        combine: impl Fn(&mut U, U) + Sync,
    ) -> SpVec<U>
    where
        T: Copy + Send + Sync,
        U: Copy + Send + Sync,
    {
        let _span = mcm_obs::kernel_span("spmspv_monoid", kernel.name());
        a.spmspv_monoid_mesh(self, kernel, plan, x, mul, combine)
    }

    fn rma_epoch<W: RmaTask + Send>(
        &mut self,
        kernel: Kernel,
        wins: Vec<&mut DenseVec>,
        tasks: &mut [W],
    ) -> u64 {
        let _span = mcm_obs::kernel_span("rma_epoch", kernel.name());
        let p = self.ctx.p();
        let fault = self.ctx.sched.as_ref().map(|s| s.fault()).unwrap_or_default();
        let total_ops = std::sync::atomic::AtomicU64::new(0);

        fn view(w: &mut DenseVec) -> &[AtomicU32] {
            w.as_atomic_view()
        }
        let views: Vec<&[AtomicU32]> = wins.into_iter().map(view).collect();
        let views = &views[..];

        // Origins are distributed round-robin over the ranks.
        let mut buckets: Vec<Vec<&mut W>> = (0..p).map(|_| Vec::new()).collect();
        for (i, t) in tasks.iter_mut().enumerate() {
            buckets[i % p].push(t);
        }
        let slots: Vec<Mutex<Option<Vec<&mut W>>>> =
            buckets.into_iter().map(|b| Mutex::new(Some(b))).collect();

        self.epoch += 1;
        let epoch_sched = self.ctx.sched.as_ref().map(|s| s.fork(0xE9C0_11EC ^ self.epoch));
        let group: Vec<usize> = (0..p).collect();

        let body = |mut comm: RankComm<u8>| -> u64 {
            let mut mine =
                slots[comm.rank()].lock().unwrap().take().expect("epoch tasks consumed twice");
            let mut win = AtomicWin::new(views, fault);
            let mut steps = 0u64;
            match epoch_sched.as_ref() {
                None => {
                    for t in mine.iter_mut() {
                        while t.step(&mut win) {}
                    }
                }
                Some(base) => {
                    // Interleave this rank's origins under a decorrelated
                    // pick stream, yielding to the transport schedule
                    // between calls so real rank skew develops.
                    let mut picks = base.fork(0x7A5C ^ comm.rank() as u64);
                    let mut live: Vec<usize> = (0..mine.len()).collect();
                    while !live.is_empty() {
                        comm.perturb_point();
                        let k = picks.pick(live.len());
                        steps += 1;
                        if !mine[live[k]].step(&mut win) {
                            live.swap_remove(k);
                        }
                    }
                }
            }
            // Close the exposure epoch with a zero-payload fence over the
            // full mesh. Under a perturbed schedule its permuted service
            // orders route through the per-source FIFO stash, so epoch
            // completion tolerates arbitrary rank skew.
            let _ = comm.alltoallv(&group, (0..p).map(|_| Vec::new()).collect());
            total_ops.fetch_add(win.ops(), Ordering::Relaxed);
            steps
        };
        let per_rank: Vec<u64> = match epoch_sched.as_ref() {
            Some(s) => run_ranks_sched(p, s, body),
            None => run_ranks(p, body),
        };
        record_rma_epoch("engine", total_ops.into_inner());
        per_rank.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(dim: usize) -> DistCtx {
        DistCtx::new(MachineConfig::hybrid(dim, 1))
    }

    /// `sends[src][dst] = [src*10 + dst]`, the canonical routing probe.
    fn probe_sends(p: usize) -> Vec<Vec<Vec<u32>>> {
        (0..p).map(|src| (0..p).map(|dst| vec![(src * 10 + dst) as u32]).collect()).collect()
    }

    #[test]
    fn alltoallv_routes_identically_on_both_backends() {
        for p in [1usize, 4, 9] {
            let dim = (p as f64).sqrt() as usize;
            let a = sim(dim).alltoallv(Kernel::Invert, 2, probe_sends(p));
            let b = EngineComm::new(p, 1).alltoallv(Kernel::Invert, 2, probe_sends(p));
            assert_eq!(a, b, "p = {p}");
            for (dst, row) in a.iter().enumerate() {
                for (src, msg) in row.iter().enumerate() {
                    assert_eq!(msg, &vec![(src * 10 + dst) as u32], "p = {p}");
                }
            }
        }
    }

    #[test]
    fn allgatherv_and_allreduce_agree_across_backends() {
        for p in [1usize, 4] {
            let dim = (p as f64).sqrt() as usize;
            let contribs: Vec<Vec<u32>> = (0..p).map(|r| vec![r as u32; r + 1]).collect();
            let a = sim(dim).allgatherv(Kernel::Prune, 1, contribs.clone());
            let b = EngineComm::new(p, 1).allgatherv(Kernel::Prune, 1, contribs.clone());
            assert_eq!(a, b, "p = {p}");
            assert_eq!(a, contribs);

            let vals: Vec<u64> = (0..p as u64).map(|r| r + 3).collect();
            for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                let x = sim(dim).allreduce(Kernel::Other, &vals, op);
                let y = EngineComm::new(p, 1).allreduce(Kernel::Other, &vals, op);
                assert_eq!(x, y, "p = {p} op {op:?}");
            }
        }
    }

    #[test]
    fn bcast_replicates_the_root_payload() {
        for p in [1usize, 4, 9] {
            let dim = (p as f64).sqrt() as usize;
            for root in [0, p - 1] {
                let data = vec![7u32, 8, 9];
                let a = sim(dim).bcast(Kernel::Other, root, data.clone());
                let b = EngineComm::new(p, 1).bcast(Kernel::Other, root, data.clone());
                assert_eq!(a, data, "p = {p} root {root}");
                assert_eq!(b, data, "p = {p} root {root}");
            }
        }
    }

    #[test]
    fn trait_alltoallv_charges_the_direct_formula() {
        // The trait-routed simulator collective must charge exactly what
        // the hard-wired kernels charged: alltoallv(p, wpe·max(send, recv)).
        let mut direct = sim(2);
        direct.charge_alltoallv(Kernel::Invert, 4, 2 * 4);
        let mut routed = sim(2);
        // Rank 0 sends 4 elements to rank 1; everyone else is idle:
        // bottleneck = 4 elements, 2 words each.
        let mut sends: Vec<Vec<Vec<u32>>> =
            (0..4).map(|_| (0..4).map(|_| Vec::new()).collect()).collect();
        sends[0][1] = vec![1, 2, 3, 4];
        let _ = routed.alltoallv(Kernel::Invert, 2, sends);
        assert_eq!(direct.timers.seconds(Kernel::Invert), routed.timers.seconds(Kernel::Invert));
        assert_eq!(direct.timers.calls(Kernel::Invert), routed.timers.calls(Kernel::Invert));
    }

    #[test]
    fn engine_collectives_are_schedule_oblivious() {
        let p = 4;
        let friendly = EngineComm::new(p, 1).alltoallv(Kernel::Invert, 2, probe_sends(p));
        for seed in [0u64, 1, 0xFEED] {
            let mut eng = EngineComm::new(p, 1).with_schedule(Schedule::new(seed));
            let perturbed = eng.alltoallv(Kernel::Invert, 2, probe_sends(p));
            assert_eq!(perturbed, friendly, "seed {seed}");
        }
    }

    /// One origin racing a single fetch_and_put on a shared slot.
    struct Racer {
        id: Vidx,
        saw: Option<Vidx>,
    }

    impl RmaTask for Racer {
        fn step(&mut self, win: &mut dyn RmaWin) -> bool {
            self.saw = Some(win.fetch_and_put(0, 0, self.id));
            false
        }
    }

    fn assert_swap_chain(racers: &[Racer], n: usize, what: &str) {
        let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
        assert_eq!(winners, 1, "{what}: atomicity violated");
        let mut seen: Vec<Vidx> = racers.iter().map(|r| r.saw.unwrap()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "{what}: lost update");
    }

    #[test]
    fn rma_epoch_swap_chains_hold_on_both_backends() {
        let n = 8;
        // Simulator, friendly and perturbed.
        for sched in [None, Some(Schedule::new(11))] {
            let mut ctx = sim(2);
            ctx.sched = sched;
            let mut slot = DenseVec::nil(1);
            let mut racers: Vec<Racer> = (0..n).map(|id| Racer { id, saw: None }).collect();
            let steps = ctx.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
            assert_eq!(steps > 0, ctx.sched.is_some());
            assert_swap_chain(&racers, n as usize, "simulator");
        }
        // Engine: real threads, real atomics, friendly and perturbed.
        for sched in [None, Some(Schedule::new(11))] {
            let mut eng = EngineComm::new(4, 1);
            if let Some(s) = sched {
                eng = eng.with_schedule(s);
            }
            let perturbed = eng.ctx().sched.is_some();
            let mut slot = DenseVec::nil(1);
            let mut racers: Vec<Racer> = (0..n).map(|id| Racer { id, saw: None }).collect();
            let steps = eng.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
            assert_eq!(steps > 0, perturbed);
            assert_swap_chain(&racers, n as usize, "engine");
        }
    }

    #[test]
    fn engine_rma_epoch_honors_fault_injection() {
        use crate::sched::SchedConfig;
        let cfg = SchedConfig { fault: FaultPlan::broken_fetch_and_put(), ..Default::default() };
        let mut eng = EngineComm::new(4, 1).with_schedule(Schedule::with_config(3, cfg));
        let mut slot = DenseVec::nil(1);
        let mut racers: Vec<Racer> = (0..6).map(|id| Racer { id, saw: None }).collect();
        let _ = eng.rma_epoch(Kernel::Augment, vec![&mut slot], &mut racers);
        let winners = racers.iter().filter(|r| r.saw == Some(NIL)).count();
        assert!(winners > 1, "the injected drop-fetch bug must be observable on the engine");
    }
}
