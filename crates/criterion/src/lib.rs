//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace member
//! shadows crates.io `criterion` with the subset of its API the benches in
//! `crates/bench/benches/` use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, throughput,
//! bench_with_input, bench_function, finish}`, `Bencher::iter`,
//! `BenchmarkId`, and `Throughput`.
//!
//! Measurement is deliberately simple: a short warm-up sizes a batch so one
//! sample costs a few tens of milliseconds, then `sample_size` batches are
//! timed with `std::time::Instant` and summarized by min / median / mean
//! ns-per-iteration. Every result is printed and, at `criterion_main!`
//! exit, appended to a JSON summary under `target/bench-json/<bench>.json`
//! (override the path with the `MCM_BENCH_JSON` environment variable) so
//! perf trajectories can be recorded without the real criterion's report
//! machinery.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark (reported, not enforced).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", 1024)` → `kernel/1024`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// One measured benchmark, as recorded into the JSON summary.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Group name (`Criterion::benchmark_group` argument).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Minimum observed ns per iteration.
    pub ns_min: f64,
    /// Median ns per iteration across samples.
    pub ns_median: f64,
    /// Mean ns per iteration across samples.
    pub ns_mean: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Optional throughput annotation (elements or bytes per iteration).
    pub throughput: Option<Throughput>,
}

/// The top-level harness: collects results from every group.
pub struct Criterion {
    bench_name: String,
    records: Vec<BenchRecord>,
    default_sample_size: usize,
}

impl Criterion {
    /// Harness for the named bench binary (used by `criterion_main!`).
    pub fn from_env(bench_name: &str) -> Self {
        Self { bench_name: bench_name.to_string(), records: Vec::new(), default_sample_size: 12 }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None, throughput: None }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let rec = run_one(&self.bench_name, "", name, sample_size, None, |b| f(b));
        self.records.push(rec);
        self
    }

    /// Writes the JSON summary; called by `criterion_main!` after all groups.
    pub fn finish_all(&self) {
        let path = match std::env::var("MCM_BENCH_JSON") {
            Ok(p) => std::path::PathBuf::from(p),
            Err(_) => {
                let dir = std::path::Path::new("target").join("bench-json");
                if std::fs::create_dir_all(&dir).is_err() {
                    return;
                }
                dir.join(format!("{}.json", self.bench_name))
            }
        };
        match std::fs::File::create(&path) {
            Ok(f) => {
                use std::io::Write;
                let mut w = std::io::BufWriter::new(f);
                let _ = writeln!(w, "{}", self.to_json());
                let _ = w.flush();
                println!("\n[bench-json] {}", path.display());
            }
            Err(e) => eprintln!("[bench-json] write failed: {e}"),
        }
    }

    /// Renders every record as a JSON document (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\n  \"bench\": \"{}\",\n  \"results\": [\n", self.bench_name));
        for (k, r) in self.records.iter().enumerate() {
            let (tp_kind, tp_val) = match r.throughput {
                Some(Throughput::Elements(n)) => ("elements", n),
                Some(Throughput::Bytes(n)) => ("bytes", n),
                None => ("none", 0),
            };
            s.push_str(&format!(
                "    {{\"group\": \"{}\", \"name\": \"{}\", \"ns_min\": {:.1}, \"ns_median\": {:.1}, \"ns_mean\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \"throughput_kind\": \"{}\", \"throughput_per_iter\": {}}}{}\n",
                r.group,
                r.name,
                r.ns_min,
                r.ns_median,
                r.ns_mean,
                r.samples,
                r.iters_per_sample,
                tp_kind,
                tp_val,
                if k + 1 < self.records.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}");
        s
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// A group of benchmarks sharing a name, sample size, and throughput label.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (clamped to `3..=25` to keep the
    /// offline harness fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.clamp(3, 25));
        self
    }

    /// Attaches a throughput annotation to subsequent benches in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.parent.default_sample_size);
        let rec =
            run_one(&self.parent.bench_name, &self.name, &id.id, samples, self.throughput, |b| {
                f(b, input)
            });
        self.parent.records.push(rec);
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let samples = self.sample_size.unwrap_or(self.parent.default_sample_size);
        let rec =
            run_one(&self.parent.bench_name, &self.name, &id, samples, self.throughput, |b| f(b));
        self.parent.records.push(rec);
        self
    }

    /// Ends the group (measurements are recorded eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

/// Passed to the measured closure; `iter` runs and times the workload.
pub struct Bencher {
    /// Iterations to run per timed batch.
    iters: u64,
    /// Total elapsed nanoseconds across the batch, written by `iter`.
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `iters` calls of `f` as one batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement. The [`BatchSize`] hint is accepted for API
    /// compatibility (inputs are always built one at a time here).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed_ns = elapsed.as_nanos() as f64;
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, not used —
/// the offline harness builds inputs one at a time).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Input is cheap to hold; batch many.
    SmallInput,
    /// Input is large; batch few.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// Target wall-clock cost of one timed sample batch.
const TARGET_SAMPLE_NS: f64 = 25_000_000.0;
/// Cap on the total warm-up + calibration spend per benchmark.
const CALIBRATION_BUDGET_NS: f64 = 200_000_000.0;

fn run_one(
    bench: &str,
    group: &str,
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut call: impl FnMut(&mut Bencher),
) -> BenchRecord {
    // Calibrate: grow the batch geometrically until one batch costs enough
    // to time reliably (or the calibration budget runs out for slow cases).
    let mut iters = 1u64;
    let mut spent = 0.0f64;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed_ns: 0.0 };
        call(&mut b);
        spent += b.elapsed_ns;
        per_iter = b.elapsed_ns / iters as f64;
        if b.elapsed_ns >= TARGET_SAMPLE_NS || spent >= CALIBRATION_BUDGET_NS {
            break;
        }
        let want = (TARGET_SAMPLE_NS / per_iter.max(1.0)).ceil() as u64;
        iters = want.clamp(iters + 1, iters.saturating_mul(8)).max(1);
    }

    let mut per_iter_samples: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed_ns: 0.0 };
        call(&mut b);
        per_iter_samples.push(b.elapsed_ns / iters as f64);
    }
    per_iter_samples.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let ns_min = per_iter_samples.first().copied().unwrap_or(per_iter);
    let ns_median = per_iter_samples.get(per_iter_samples.len() / 2).copied().unwrap_or(per_iter);
    let ns_mean = if per_iter_samples.is_empty() {
        per_iter
    } else {
        per_iter_samples.iter().sum::<f64>() / per_iter_samples.len() as f64
    };

    let full = if group.is_empty() {
        format!("{bench}::{name}")
    } else {
        format!("{bench}::{group}/{name}")
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns_median.max(1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 * 1e3 / ns_median.max(1e-9))
        }
        None => String::new(),
    };
    println!(
        "{full:<56} time: [{:.2} {:.2} {:.2}] µs/iter{tp}",
        ns_min / 1e3,
        ns_median / 1e3,
        ns_mean / 1e3
    );

    BenchRecord {
        group: group.to_string(),
        name: name.to_string(),
        ns_min,
        ns_median,
        ns_mean,
        samples: per_iter_samples.len(),
        iters_per_sample: iters,
        throughput,
    }
}

/// Bundles bench functions into a group runner, as criterion's macro does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point: runs every group and writes the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_env(env!("CARGO_CRATE_NAME"));
            $( $group(&mut c); )+
            c.finish_all();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("add", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn measures_and_serializes() {
        let mut c = Criterion::from_env("selftest");
        record(&mut c);
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert!(r.ns_median > 0.0 && r.ns_min <= r.ns_median);
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\"name\": \"add/4\""));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
