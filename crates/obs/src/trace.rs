//! Structured tracing core: nestable spans recorded into per-thread
//! buffers, keyed by rank, stamped with monotonic nanoseconds.
//!
//! Hot path (enabled): read the monotonic clock twice and push one
//! [`TraceEvent`] onto a thread-local `Vec` — no locks, no allocation once
//! the buffer is warm. Disabled path: one `Relaxed` atomic load.
//!
//! Buffers drain to a global sink when a thread exits (TLS drop) or when
//! the owning thread calls [`flush_thread`] / [`take_trace`]. The engine
//! backend joins its per-rank threads before the driver collects the
//! trace, so rank buffers are always flushed by the time [`take_trace`]
//! runs on the main thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::tracing_enabled;

/// Hard cap on buffered events per thread; beyond it events are counted in
/// [`Trace::dropped`] instead of stored, so a runaway loop cannot exhaust
/// memory.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Site label, e.g. `"spmspv"`, `"ms_bfs_phase"`.
    pub name: &'static str,
    /// Per-`Kernel` tag (`Kernel::name()`), if this span should roll up
    /// into the measured per-kernel breakdown.
    pub kernel: Option<&'static str>,
    /// Logical rank of the recording thread ([`set_thread_rank`]).
    pub rank: u32,
    /// Stable per-thread id (assignment order, not OS tid).
    pub tid: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// True when this kernel-tagged span was opened inside another
    /// kernel-tagged span on the same thread; the breakdown skips it to
    /// avoid double-counting (e.g. an `alltoallv` span inside `invert`).
    pub nested_kernel: bool,
}

/// A drained set of spans, ready for export or aggregation.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    /// Events discarded because a thread buffer hit its cap.
    pub dropped: u64,
}

impl Trace {
    /// Chrome `chrome://tracing` JSON (see [`crate::chrome`]).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }

    /// Measured per-kernel wall-clock breakdown (see [`crate::breakdown`]).
    pub fn wall_breakdown(&self) -> crate::breakdown::WallBreakdown {
        crate::breakdown::WallBreakdown::from_trace(self)
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the (lazily initialized) process trace
/// epoch. All spans share this timeline, so cross-thread events order
/// correctly in the Chrome view.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn sink() -> &'static Mutex<Trace> {
    static SINK: OnceLock<Mutex<Trace>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Trace::default()))
}

struct ThreadBuf {
    events: Vec<TraceEvent>,
    dropped: u64,
    rank: u32,
    tid: u64,
    /// Open kernel-tagged spans on this thread (nesting detector).
    kernel_depth: u32,
}

impl ThreadBuf {
    fn new() -> Self {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        ThreadBuf {
            events: Vec::new(),
            dropped: 0,
            rank: 0,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            kernel_depth: 0,
        }
    }

    fn flush(&mut self) {
        if self.events.is_empty() && self.dropped == 0 {
            return;
        }
        let mut sink = sink().lock().unwrap();
        sink.events.append(&mut self.events);
        sink.dropped += self.dropped;
        self.dropped = 0;
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Tags spans recorded by the calling thread with a logical rank. The
/// engine backend calls this at the top of every rank closure; the main
/// thread (simulator backend, `mcmd`) defaults to rank 0.
pub fn set_thread_rank(rank: usize) {
    let _ = BUF.try_with(|b| b.borrow_mut().rank = rank as u32);
}

/// Drains the calling thread's buffer into the global sink. Buffers of
/// exited threads are drained automatically; call this on long-lived
/// threads before collecting with [`take_trace`] from elsewhere.
///
/// Note: the automatic drain runs in the thread's TLS destructor, which
/// only an explicit `JoinHandle::join` is guaranteed to wait for. The
/// implicit wait at the end of `std::thread::scope` signals when the
/// spawned closure returns and can race the destructor — join handles
/// explicitly (as the engine backend does) or call this before exiting.
pub fn flush_thread() {
    let _ = BUF.try_with(|b| b.borrow_mut().flush());
}

/// Flushes the calling thread, then drains and returns the global sink.
/// Spans still open (guard alive) are not included.
pub fn take_trace() -> Trace {
    flush_thread();
    std::mem::take(&mut *sink().lock().unwrap())
}

/// RAII span: records one [`TraceEvent`] covering its lifetime when
/// dropped. Created by [`span`] / [`kernel_span`]; inert (and free apart
/// from the flag check) when tracing is disabled at open time.
#[must_use = "a span measures its guard's lifetime; binding to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    kernel: Option<&'static str>,
    /// `None` when tracing was disabled at open — the drop is then free.
    start_ns: Option<u64>,
    nested_kernel: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start_ns) = self.start_ns else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(start_ns);
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            if self.kernel.is_some() {
                b.kernel_depth = b.kernel_depth.saturating_sub(1);
            }
            if b.events.len() >= MAX_EVENTS_PER_THREAD {
                b.dropped += 1;
                return;
            }
            let (rank, tid) = (b.rank, b.tid);
            b.events.push(TraceEvent {
                name: self.name,
                kernel: self.kernel,
                rank,
                tid,
                start_ns,
                dur_ns,
                nested_kernel: self.nested_kernel,
            });
        });
    }
}

fn open(name: &'static str, kernel: Option<&'static str>) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { name, kernel: None, start_ns: None, nested_kernel: false };
    }
    let mut nested_kernel = false;
    if kernel.is_some() {
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            nested_kernel = b.kernel_depth > 0;
            b.kernel_depth += 1;
        });
    }
    SpanGuard { name, kernel, start_ns: Some(now_ns()), nested_kernel }
}

/// Opens an untagged span named `name`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open(name, None)
}

/// Opens a span that rolls up into the measured per-kernel breakdown under
/// `kernel` (pass `Kernel::name()`).
#[inline]
pub fn kernel_span(name: &'static str, kernel: &'static str) -> SpanGuard {
    open(name, Some(kernel))
}

/// A plain always-on wall-clock stopwatch (no tracing flag involved).
/// Used where a measurement must exist regardless of observability state —
/// e.g. `McmStats::spmv_iteration_ns` stays populated with tracing off.
pub struct Stopwatch(Instant);

impl Stopwatch {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch(Instant::now())
    }

    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enable_tracing, test_guard};

    // Tests in this file share the global flag + sink with lib.rs tests;
    // serialize on the crate-wide guard and keep each test self-contained:
    // enable, record, take, disable.

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_guard();
        enable_tracing(false);
        let _ = take_trace();
        {
            let _s = span("never");
            let _k = kernel_span("never_k", "SpMV");
        }
        assert!(take_trace().events.iter().all(|e| e.name != "never" && e.name != "never_k"));
    }

    #[test]
    fn spans_nest_and_tag_kernels() {
        let _g = test_guard();
        enable_tracing(true);
        let _ = take_trace();
        {
            let _outer = kernel_span("trace_test_outer", "SpMV");
            let _plain = span("trace_test_plain");
            let _inner = kernel_span("trace_test_inner", "SpMV");
        }
        enable_tracing(false);
        let t = take_trace();
        let get = |n: &str| t.events.iter().find(|e| e.name == n).unwrap();
        let (outer, plain, inner) =
            (get("trace_test_outer"), get("trace_test_plain"), get("trace_test_inner"));
        assert!(!outer.nested_kernel);
        assert!(inner.nested_kernel, "inner kernel span must be flagged");
        assert!(!plain.nested_kernel, "plain spans never count as nested");
        // Containment: inner lies within outer on the shared timeline.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert_eq!(outer.kernel, Some("SpMV"));
        assert_eq!(plain.kernel, None);
    }

    #[test]
    fn exited_threads_flush_automatically() {
        let _g = test_guard();
        enable_tracing(true);
        let _ = take_trace();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3usize)
                .map(|rank| {
                    s.spawn(move || {
                        set_thread_rank(rank);
                        let _g = kernel_span("trace_test_rank_span", "Augment");
                    })
                })
                .collect();
            // Join each handle explicitly: a real join returns only after
            // the thread fully terminated, TLS destructors (the flush)
            // included. The scope's implicit wait signals earlier — at
            // closure return — and would race the collection below.
            for h in handles {
                h.join().unwrap();
            }
        });
        enable_tracing(false);
        let t = take_trace();
        let ranks: std::collections::BTreeSet<u32> =
            t.events.iter().filter(|e| e.name == "trace_test_rank_span").map(|e| e.rank).collect();
        assert_eq!(ranks.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn stopwatch_runs_without_tracing() {
        let _g = test_guard();
        enable_tracing(false);
        let sw = Stopwatch::new();
        std::thread::yield_now();
        let _ns = sw.elapsed_ns(); // monotonic elapsed, no panic
    }
}
