//! Prometheus text exposition (format version 0.0.4) for a
//! [`Registry`](crate::metrics::Registry).
//!
//! Output is deterministic: metric families sorted by name, series sorted
//! by label set, histogram buckets ascending with the empty leading tail
//! elided. `mcmd` serves this over the line protocol (`metrics` command,
//! terminated by `# EOF`).

use crate::metrics::{Histogram, MetricKey, Registry, HIST_BUCKETS};

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `name{a="1",b="2"}`; an extra label (histograms' `le`) is
/// appended after the recorded ones.
fn series(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let (name, labels) = key;
    if labels.is_empty() && extra.is_none() {
        return name.clone();
    }
    let mut out = format!("{name}{{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    out.push('}');
    out
}

/// `f64` rendering: decimal (Rust's shortest round-trip `Display`), which
/// Prometheus parses; avoids locale/exponent ambiguity for our bounds.
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        *last = Some(name.to_string());
    }
}

/// Serializes every metric in `r` to Prometheus text exposition.
pub fn expose(r: &Registry) -> String {
    let mut out = String::new();
    let mut last_name: Option<String> = None;

    for (key, v) in r.snapshot_counters() {
        type_line(&mut out, &mut last_name, &key.0, "counter");
        out.push_str(&format!("{} {}\n", series(&key, None), v));
    }
    last_name = None;
    for (key, v) in r.snapshot_gauges() {
        type_line(&mut out, &mut last_name, &key.0, "gauge");
        out.push_str(&format!("{} {}\n", series(&key, None), num(v)));
    }
    last_name = None;
    for (key, h) in r.snapshot_histograms() {
        type_line(&mut out, &mut last_name, &key.0, "histogram");
        let bucket_key = (format!("{}_bucket", key.0), key.1.clone());
        // Buckets use the `_bucket` suffix; sum/count splice their own.
        push_histogram_series(&mut out, &key, &bucket_key, &h);
    }
    out
}

fn push_histogram_series(out: &mut String, key: &MetricKey, bucket_key: &MetricKey, h: &Histogram) {
    let buckets = h.bucket_counts();
    let last_used = (0..HIST_BUCKETS).rev().find(|&i| buckets[i] > 0);
    let mut cumulative = 0u64;
    if let Some(last_used) = last_used {
        for (i, &b) in buckets.iter().enumerate().take(last_used + 1) {
            cumulative += b;
            let le = (1u128 << i) as f64 / 1e9;
            out.push_str(&format!(
                "{} {}\n",
                series(bucket_key, Some(("le", &num(le)))),
                cumulative
            ));
        }
    }
    out.push_str(&format!("{} {}\n", series(bucket_key, Some(("le", "+Inf"))), h.count()));
    let sum_key = (format!("{}_sum", key.0), key.1.clone());
    out.push_str(&format!("{} {}\n", series(&sum_key, None), num(h.sum_seconds())));
    let count_key = (format!("{}_count", key.0), key.1.clone());
    out.push_str(&format!("{} {}\n", series(&count_key, None), h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn counters_and_gauges_expose_sorted() {
        let r = Registry::new();
        r.counter("b_total", &[]).add(2);
        r.counter("a_total", &[("x", "1")]).add(1);
        r.gauge("g", &[]).set(1.5);
        let text = expose(&r);
        let a = text.find("a_total{x=\"1\"} 1").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a < b, "families sorted by name");
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 1.5"));
    }

    #[test]
    fn histogram_exposes_cumulative_buckets_sum_count() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", &[("op", "query")]);
        h.observe_ns(1); // bucket 0, le=1e-9
        h.observe_ns(2); // bucket 1, le=2e-9
        let text = expose(&r);
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{op=\"query\",le=\"0.000000001\"} 1"));
        assert!(text.contains("lat_seconds_bucket{op=\"query\",le=\"0.000000002\"} 2"));
        assert!(text.contains("lat_seconds_bucket{op=\"query\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_sum{op=\"query\"} 0.000000003"));
        assert!(text.contains("lat_seconds_count{op=\"query\"} 2"));
    }

    #[test]
    fn empty_histogram_still_exposes_inf_and_count() {
        let r = Registry::new();
        let _ = r.histogram("empty_seconds", &[]);
        let text = expose(&r);
        assert!(text.contains("empty_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_seconds_count 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc_total", &[("p", "a\"b\\c\nd")]).inc();
        let text = expose(&r);
        assert!(text.contains("esc_total{p=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
