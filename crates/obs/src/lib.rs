//! # mcm-obs — tracing, metrics & profiling for the matching stack
//!
//! The paper's evaluation (Figs. 5–9) is built on per-kernel runtime
//! breakdowns; `mcm-bsp::timers` reproduces those in *modeled* α–β–γ time
//! only. This crate adds the measured side: wall-clock visibility into the
//! real execution backends (`EngineComm`, `mcmd`) so the modeled and
//! measured breakdowns can be printed side by side (`mcm match
//! --breakdown`) and the next bottleneck found with data instead of the
//! cost model's word.
//!
//! Two independent facilities, both **no-ops until enabled**:
//!
//! * **Structured tracing** ([`trace`]) — nestable spans recorded into
//!   per-thread buffers (the hot path is a push onto a thread-local `Vec`;
//!   no locks, no allocation once warm), keyed by rank and stamped with
//!   monotonic nanoseconds. Export to Chrome `chrome://tracing` JSON
//!   ([`chrome`]) or aggregate kernel-tagged spans into a measured
//!   per-kernel wall-clock breakdown ([`breakdown`]).
//! * **Metrics** ([`metrics`]) — a global registry of counters, gauges and
//!   log-bucketed latency histograms with Prometheus text exposition
//!   ([`prom`]); `mcmd` serves it over the line protocol (`metrics`
//!   command).
//!
//! ## Zero-cost default
//!
//! Both facilities are off by default: every instrumentation site guards
//! itself on one `Relaxed` atomic load ([`tracing_enabled`] /
//! [`metrics_enabled`]) and does nothing else when disabled. The
//! `obs_overhead` bench measures the disabled-recorder cost on the
//! `engine_e2e` sweep (recorded in `BENCH_obs.json`, methodology in
//! DESIGN.md §13) and `tests/obs.rs` gates it in CI at <2%.
//!
//! ```
//! mcm_obs::enable_tracing(true);
//! {
//!     let _outer = mcm_obs::kernel_span("spmspv", "SpMV");
//!     let _inner = mcm_obs::kernel_span("allgatherv", "SpMV"); // nested
//! }
//! let trace = mcm_obs::take_trace();
//! assert_eq!(trace.events.len(), 2);
//! assert!(trace.to_chrome_json().contains("\"ph\":\"X\""));
//! mcm_obs::enable_tracing(false);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

pub mod breakdown;
pub mod chrome;
pub mod metrics;
pub mod prom;
pub mod trace;

pub use breakdown::{side_by_side, WallBreakdown};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use trace::{
    kernel_span, set_thread_rank, span, take_trace, SpanGuard, Stopwatch, Trace, TraceEvent,
};

/// Master switch for span recording (default off).
static TRACING: AtomicBool = AtomicBool::new(false);
/// Master switch for metrics recording (default off).
static METRICS: AtomicBool = AtomicBool::new(false);

/// Turns span recording on or off. Spans opened while enabled still close
/// correctly if recording is disabled mid-span.
pub fn enable_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether spans are currently recorded — one `Relaxed` load; this is the
/// entire disabled-path cost of a [`span`] call.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns metrics recording on or off.
pub fn enable_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// Whether metrics are currently recorded — one `Relaxed` load; this is
/// the entire disabled-path cost of the counter/histogram helpers.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Enables (or disables) both facilities at once.
pub fn enable_all(on: bool) {
    enable_tracing(on);
    enable_metrics(on);
}

/// Adds `v` to the counter `name{labels}` — a no-op unless
/// [`metrics_enabled`].
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: u64) {
    if metrics_enabled() {
        registry().counter(name, labels).add(v);
    }
}

/// Sets the gauge `name{labels}` — a no-op unless [`metrics_enabled`].
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    if metrics_enabled() {
        registry().gauge(name, labels).set(v);
    }
}

/// Records `ns` nanoseconds into the latency histogram `name{labels}` — a
/// no-op unless [`metrics_enabled`].
#[inline]
pub fn observe_ns(name: &str, labels: &[(&str, &str)], ns: u64) {
    if metrics_enabled() {
        registry().histogram(name, labels).observe_ns(ns);
    }
}

/// Serializes unit tests that touch the global flags, sink, or registry
/// (they run in parallel threads of one test binary otherwise).
#[cfg(test)]
pub(crate) static TEST_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_default_off_and_toggle() {
        let _g = test_guard();
        // Other tests in this binary toggle the same globals; only check
        // the toggles are observable, not the ambient state.
        enable_tracing(true);
        assert!(tracing_enabled());
        enable_tracing(false);
        assert!(!tracing_enabled());
        enable_metrics(true);
        assert!(metrics_enabled());
        enable_metrics(false);
        assert!(!metrics_enabled());
    }

    #[test]
    fn disabled_helpers_do_not_touch_the_registry() {
        let _g = test_guard();
        enable_metrics(false);
        counter_add("lib_test_never_created_total", &[], 1);
        observe_ns("lib_test_never_created_seconds", &[], 1);
        let text = prom::expose(registry());
        assert!(!text.contains("lib_test_never_created"));
    }
}
