//! Metrics registry: counters, gauges and log₂-bucketed latency
//! histograms, addressed by `name{label="value",…}`.
//!
//! Handles are `Arc`-backed atomics: look one up once (a registry lock),
//! then update it lock-free from any thread. The convenience helpers in
//! the crate root ([`crate::counter_add`] etc.) do lookup + update per
//! call, which is fine off the hot path; hot loops should cache the
//! handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ nanosecond buckets: bucket `i` counts observations
/// `v ≤ 2^i ns`, i.e. the spread covers 1 ns to ~584 years.
pub const HIST_BUCKETS: usize = 64;

/// Monotonic counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (f64 stored as bits).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// Latency histogram over log₂ nanosecond buckets.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistInner>);

/// Index of the smallest bucket whose upper bound `2^i` covers `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        (64 - (ns - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    pub fn observe_ns(&self, ns: u64) {
        self.0.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Per-bucket counts (not cumulative), index `i` ↦ upper bound `2^i` ns.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile in nanoseconds (`0.0 ≤ q ≤ 1.0`), resolved
    /// to the upper bound of the log₂ bucket holding the target rank —
    /// a conservative (over-)estimate with at most 2× resolution error,
    /// which is what the serve load harness cross-checks its exact
    /// client-side percentiles against. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.bucket_counts().into_iter().enumerate() {
            seen += b;
            if seen >= rank {
                return 1u64 << i.min(63);
            }
        }
        u64::MAX
    }
}

/// `name` + sorted labels; the registry key.
pub type MetricKey = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut ls: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    ls.sort();
    (name.to_string(), ls)
}

/// A family-of-metrics store. [`registry`] returns the process-global one;
/// independent instances can be created for tests.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Counter>>,
    gauges: Mutex<BTreeMap<MetricKey, Gauge>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counters.lock().unwrap().entry(key(name, labels)).or_default().clone()
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauges.lock().unwrap().entry(key(name, labels)).or_default().clone()
    }

    /// Gets or creates the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histograms.lock().unwrap().entry(key(name, labels)).or_default().clone()
    }

    /// Sorted snapshots for exposition (see [`crate::prom`]).
    pub fn snapshot_counters(&self) -> Vec<(MetricKey, u64)> {
        self.counters.lock().unwrap().iter().map(|(k, c)| (k.clone(), c.get())).collect()
    }

    pub fn snapshot_gauges(&self) -> Vec<(MetricKey, f64)> {
        self.gauges.lock().unwrap().iter().map(|(k, g)| (k.clone(), g.get())).collect()
    }

    pub fn snapshot_histograms(&self) -> Vec<(MetricKey, Histogram)> {
        self.histograms.lock().unwrap().iter().map(|(k, h)| (k.clone(), h.clone())).collect()
    }

    /// Removes every metric (test isolation; the service never calls it).
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
    }
}

/// The process-global registry used by the crate-root helpers.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_key() {
        let r = Registry::new();
        let a = r.counter("req_total", &[("code", "ok")]);
        let b = r.counter("req_total", &[("code", "ok")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        // Different labels → different counter.
        assert_eq!(r.counter("req_total", &[("code", "err")]).get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter("c", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(r.counter("c", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let r = Registry::new();
        let g = r.gauge("occupancy", &[]);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(-3.5);
        assert_eq!(r.gauge("occupancy", &[]).get(), -3.5);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative_by_construction() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0); // ≤ 2^0
        assert_eq!(bucket_index(2), 1); // ≤ 2^1
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);

        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        h.observe_ns(1);
        h.observe_ns(1000);
        h.observe_ns(1000);
        assert_eq!(h.count(), 3);
        assert!((h.sum_seconds() - 2001e-9).abs() < 1e-15);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[10], 2); // 1000 ≤ 1024 = 2^10
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let r = Registry::new();
        let h = r.histogram("q", &[]);
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram");
        // 90 fast observations (~1µs bucket) and 10 slow (~1ms bucket).
        for _ in 0..90 {
            h.observe_ns(1000); // bucket 10, upper bound 1024
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000); // bucket 20, upper bound 1<<20
        }
        assert_eq!(h.quantile_ns(0.5), 1 << 10);
        assert_eq!(h.quantile_ns(0.9), 1 << 10);
        assert_eq!(h.quantile_ns(0.99), 1 << 20);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        assert_eq!(h.quantile_ns(0.0), 1 << 10, "q=0 clamps to the first observation");
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let r = Registry::new();
        let c = r.counter("par_total", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
