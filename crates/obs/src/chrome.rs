//! Chrome `chrome://tracing` / Perfetto JSON export.
//!
//! Emits the "JSON Array Format" with complete (`"ph":"X"`) events only:
//! timestamps and durations in **microseconds** (fractional, from the
//! nanosecond source), `pid` = rank (so each rank gets its own process
//! track), `tid` = stable recording-thread id. Load the file via
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::trace::{Trace, TraceEvent};

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, e.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, e.kernel.unwrap_or("span"));
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    // µs with ns resolution preserved as fraction.
    out.push_str(&format!("{:.3}", e.start_ns as f64 / 1e3));
    out.push_str(",\"dur\":");
    out.push_str(&format!("{:.3}", e.dur_ns as f64 / 1e3));
    out.push_str(&format!(",\"pid\":{},\"tid\":{},\"args\":{{\"rank\":{}", e.rank, e.tid, e.rank));
    if e.nested_kernel {
        out.push_str(",\"nested_kernel\":true");
    }
    out.push_str("}}");
}

/// Serializes a drained [`Trace`] to Chrome tracing JSON. Events are
/// sorted by (rank, tid, start) so output is deterministic given a trace.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<&TraceEvent> = trace.events.iter().collect();
    events.sort_by_key(|e| (e.rank, e.tid, e.start_ns, e.dur_ns));
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    if trace.dropped > 0 {
        out.push_str(&format!(",\"otherData\":{{\"dropped\":{}}}", trace.dropped));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, rank: u32, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name,
            kernel: Some("SpMV"),
            rank,
            tid: rank as u64,
            start_ns: start,
            dur_ns: dur,
            nested_kernel: false,
        }
    }

    #[test]
    fn emits_complete_events_in_microseconds() {
        let trace =
            Trace { events: vec![ev("b", 1, 2500, 1000), ev("a", 0, 1500, 500)], dropped: 0 };
        let json = to_chrome_json(&trace);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        // 1500 ns → 1.500 µs; rank 0 sorts first.
        let a = json.find("\"ts\":1.500").unwrap();
        let b = json.find("\"ts\":2.500").unwrap();
        assert!(a < b);
        assert!(json.contains("\"dur\":0.500"));
        assert!(json.contains("\"pid\":1"));
    }

    #[test]
    fn escapes_are_safe() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn dropped_count_is_reported() {
        let trace = Trace { events: vec![], dropped: 7 };
        let json = to_chrome_json(&trace);
        assert!(json.contains("\"dropped\":7"));
    }
}
