//! Measured per-kernel wall-clock breakdown, printable side by side with
//! the modeled α–β–γ breakdown from `mcm-bsp::Timers` (the Fig. 5 shape
//! check).
//!
//! Aggregation sums only top-level kernel spans (`nested_kernel == false`)
//! so a communication span recorded inside e.g. an `Invert` span does not
//! count its wall time twice. Spans from concurrent rank threads overlap
//! in real time; the breakdown reports summed span time (CPU-rank-time,
//! like the modeled timers, which also sum the bottleneck rank per call),
//! so both columns share units of "kernel-time".

use std::collections::BTreeMap;

use crate::trace::Trace;

/// Aggregated measured breakdown: per kernel, total wall seconds of
/// top-level spans and how many such spans were recorded.
#[derive(Debug, Default, Clone)]
pub struct WallBreakdown {
    /// Kernel name → (seconds, span count), sorted by kernel name.
    rows: BTreeMap<&'static str, (f64, u64)>,
}

impl WallBreakdown {
    /// Aggregates every non-nested kernel-tagged span in `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut rows: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for e in &trace.events {
            let Some(kernel) = e.kernel else { continue };
            if e.nested_kernel {
                continue;
            }
            let row = rows.entry(kernel).or_insert((0.0, 0));
            row.0 += e.dur_ns as f64 / 1e9;
            row.1 += 1;
        }
        WallBreakdown { rows }
    }

    /// (seconds, span count) measured for `kernel`, zero if never seen.
    pub fn get(&self, kernel: &str) -> (f64, u64) {
        self.rows.get(kernel).copied().unwrap_or((0.0, 0))
    }

    /// Total measured seconds across all kernels.
    pub fn total_seconds(&self) -> f64 {
        self.rows.values().map(|(s, _)| s).sum()
    }

    /// Rows sorted by kernel name.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.rows.iter().map(|(k, (s, c))| (*k, *s, *c))
    }
}

/// Renders the measured-vs-modeled per-kernel table. `modeled` is
/// `Timers::breakdown()` mapped through `Kernel::name()`:
/// `(kernel, modeled_seconds, modeled_calls)`. Kernels appearing on either
/// side get a row; both totals are printed so the Fig. 5 shape comparison
/// is a single glance.
pub fn side_by_side(measured: &WallBreakdown, modeled: &[(&str, f64, u64)]) -> String {
    let mut kernels: Vec<&str> = measured.rows().map(|(k, _, _)| k).collect();
    for (k, _, _) in modeled {
        if !kernels.contains(k) {
            kernels.push(k);
        }
    }
    kernels.sort_unstable();

    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>14} {:>10} {:>14} {:>10}\n",
        "kernel", "measured_s", "spans", "modeled_s", "calls"
    ));
    let (mut meas_total, mut model_total) = (0.0f64, 0.0f64);
    for k in kernels {
        let (ms, mc) = measured.get(k);
        let (ds, dc) = modeled
            .iter()
            .find(|(mk, _, _)| *mk == k)
            .map(|(_, s, c)| (*s, *c))
            .unwrap_or((0.0, 0));
        if ms == 0.0 && ds == 0.0 && mc == 0 && dc == 0 {
            continue;
        }
        meas_total += ms;
        model_total += ds;
        out.push_str(&format!("{:<10} {:>14.6} {:>10} {:>14.6} {:>10}\n", k, ms, mc, ds, dc));
    }
    out.push_str(&format!(
        "{:<10} {:>14.6} {:>10} {:>14.6} {:>10}\n",
        "total", meas_total, "", model_total, ""
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(kernel: Option<&'static str>, dur_ns: u64, nested: bool) -> TraceEvent {
        TraceEvent {
            name: "x",
            kernel,
            rank: 0,
            tid: 0,
            start_ns: 0,
            dur_ns,
            nested_kernel: nested,
        }
    }

    #[test]
    fn aggregates_top_level_kernel_spans_only() {
        let trace = Trace {
            events: vec![
                ev(Some("SpMV"), 1_000_000_000, false),
                ev(Some("SpMV"), 500_000_000, false),
                ev(Some("SpMV"), 250_000_000, true), // nested: excluded
                ev(Some("Invert"), 100_000_000, false),
                ev(None, 999_000_000_000, false), // untagged: excluded
            ],
            dropped: 0,
        };
        let b = WallBreakdown::from_trace(&trace);
        let (s, c) = b.get("SpMV");
        assert!((s - 1.5).abs() < 1e-9);
        assert_eq!(c, 2);
        assert_eq!(b.get("Invert").1, 1);
        assert_eq!(b.get("Augment"), (0.0, 0));
        assert!((b.total_seconds() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn table_shows_both_sides_and_totals() {
        let trace = Trace { events: vec![ev(Some("SpMV"), 2_000_000_000, false)], dropped: 0 };
        let b = WallBreakdown::from_trace(&trace);
        let table = side_by_side(&b, &[("SpMV", 1.25, 7), ("Augment", 0.5, 3)]);
        assert!(table.contains("kernel"));
        assert!(table.contains("SpMV"));
        assert!(table.contains("2.000000"));
        assert!(table.contains("1.250000"));
        // Augment has no measured spans but still appears (modeled side).
        assert!(table.contains("Augment"));
        assert!(table.lines().last().unwrap().starts_with("total"));
    }
}
