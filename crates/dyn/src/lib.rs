//! # mcm-dyn — dynamic bipartite graphs, incrementally repaired matchings
//!
//! The paper solves maximum cardinality matching once, on a frozen
//! matrix. This crate keeps that answer live while edges come and go:
//!
//! * [`DynGraph`] — a mutable bipartite graph as two lock-stepped
//!   [`CscOverlay`](mcm_sparse::CscOverlay)s (column and row adjacency),
//!   with epoch-bumping compaction back into frozen CSC;
//! * [`DynMatching`] — an always-maximum matching repaired after each
//!   update batch by single-source augmenting searches from the dirtied
//!   vertices, falling back to the warm-started multi-source MS-BFS
//!   driver (`mcm-core`) when the dirty set is large — the dynamic
//!   analogue of the paper's `k < 2p²` path-vs-level parallelism switch;
//! * [`WDynMatching`] — the weighted sibling: an always-(ε-)optimal
//!   weighted matching whose auction prices persist across batches, so a
//!   batch only re-auctions the columns whose ε-complementary-slackness
//!   it actually violated (cold parallel ε-scaled solve above a dirty
//!   threshold);
//! * [`StateSnapshot`] — an immutable copy of the engine's published
//!   state, the unit of snapshot isolation in the `mcm-serve` daemon
//!   (which also owns the `mcmd` line protocol, in `mcm_serve::proto`).
//!
//! Every batch ends certified: a Berge check seeded at the batch's dirty
//! region (or a full sweep when the repair itself had to go global).
//! `tests/dyn_oracle.rs` sweeps the engine differentially against
//! from-scratch Hopcroft–Karp over the `mcm-gen` update-trace suite.

pub mod engine;
pub mod graph;
pub mod weighted;

pub use engine::{
    BatchReport, CertScope, DynMatching, DynOptions, DynStats, FallbackBackend, StateSnapshot,
    Update,
};
pub use graph::DynGraph;
pub use weighted::{WBatchReport, WDynMatching, WDynOptions, WDynStats, WStateSnapshot, WUpdate};
