//! Weight-aware incremental matching: price-carrying auction repair.
//!
//! The weighted sibling of [`crate::engine::DynMatching`]. Where the
//! cardinality engine repairs with alternating BFS from dirty vertices,
//! this engine exploits the auction's dual structure: the row **prices**
//! are a certificate that survives most updates untouched. A batch only
//! invalidates ε-complementary-slackness locally —
//!
//! * an inserted or re-weighted edge `(r, c, w)` changes column `c`'s
//!   candidate set, so only `c`'s ε-CS needs re-checking;
//! * deleting a *matched* edge frees its row, whose price must drop to 0
//!   (dual feasibility for unmatched rows), which in turn can tempt every
//!   column adjacent to that row;
//! * deleting an unmatched edge only shrinks a column's candidate set,
//!   which cannot violate any ε-CS condition — no work at all.
//!
//! [`WDynMatching::apply_batch`] therefore walks a dirty-column worklist:
//! violators are unmatched (cascading price resets through their freed
//! rows), and the resulting unmatched dirty columns re-enter a serial
//! auction that starts from the *current* prices — typically a handful of
//! bids. Above [`WDynOptions::fallback_threshold`] the engine abandons
//! incrementality and runs a cold parallel solve
//! ([`mcm_core::weighted::auction_mwm_par`]) instead. Either way the
//! result satisfies the same ε-CS certificate the static engines carry
//! ([`mcm_core::verify::verify_eps_cs`]), with ε fixed at the exactness
//! bound `1/(2·(n1+1))` so integer-weight instances stay exactly optimal
//! across arbitrary update histories.

use mcm_core::auction::AuctionOptions;
use mcm_core::verify::{verify_eps_cs, VerifyError};
use mcm_core::weighted::auction_mwm_par;
use mcm_core::Matching;
use mcm_sparse::{CscOverlay, Vidx, WCsc, WCscOverlay, NIL};
use std::collections::VecDeque;

/// One weighted point update. `Insert` on a live edge re-weights it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WUpdate {
    /// Insert (or re-weight) edge `(row, col)` with the given weight.
    Insert(Vidx, Vidx, f64),
    /// Delete edge `(row, col)` if present.
    Delete(Vidx, Vidx),
}

/// Tunables of the weighted incremental engine.
#[derive(Clone, Copy, Debug)]
pub struct WDynOptions {
    /// Dirty-bidder fraction of the column side above which the engine
    /// cold-solves instead of repairing incrementally.
    pub fallback_threshold: f64,
    /// Worker threads for cold solves (incremental repair is serial).
    pub threads: usize,
    /// Resolution-order perturbation seed for cold solves.
    pub seed: u64,
    /// Verify the full ε-CS certificate after every batch (O(nnz);
    /// differential harnesses turn this on).
    pub full_verify: bool,
}

impl Default for WDynOptions {
    fn default() -> Self {
        Self { fallback_threshold: 0.25, threads: 1, seed: 0, full_verify: false }
    }
}

/// What one [`WDynMatching::apply_batch`] call did.
#[derive(Clone, Debug, Default)]
pub struct WBatchReport {
    /// Updates that changed the graph (no-ops excluded).
    pub applied: usize,
    /// Edge insertions (including re-weights of live edges).
    pub inserts: usize,
    /// Edge deletions.
    pub deletes: usize,
    /// Deletions that hit a matched edge.
    pub matched_deletes: usize,
    /// Columns whose ε-CS was re-checked.
    pub dirty: usize,
    /// Columns unmatched by the ε-CS cascade (violators).
    pub repaired: usize,
    /// Bids processed by the incremental re-auction.
    pub rebids: usize,
    /// `true` when the batch fell back to a cold parallel solve.
    pub cold: bool,
    /// Matching weight change produced by this batch.
    pub weight_delta: f64,
    /// Matching weight after the batch.
    pub weight: f64,
    /// Cardinality after the batch.
    pub cardinality: usize,
}

/// Cumulative counters of a [`WDynMatching`].
#[derive(Clone, Debug, Default)]
pub struct WDynStats {
    /// Batches applied.
    pub batches: u64,
    /// Graph-changing updates applied.
    pub updates: u64,
    /// Inserts (including re-weights).
    pub inserts: u64,
    /// Deletes.
    pub deletes: u64,
    /// Deletes that hit a matched edge.
    pub matched_deletes: u64,
    /// Dirty columns examined across all batches.
    pub dirty_bidders: u64,
    /// Incremental re-auction bids across all batches.
    pub rebids: u64,
    /// Batches repaired incrementally.
    pub incremental_batches: u64,
    /// Batches that cold-solved.
    pub cold_solves: u64,
    /// Sum of positive per-batch weight deltas.
    pub weight_gained: f64,
    /// Sum of negative per-batch weight deltas (as a positive number).
    pub weight_lost: f64,
    /// The last batch's report.
    pub last: WBatchReport,
}

/// A consistent copy of the weighted engine state (graph + matching
/// weight + counters), cheap enough to publish per batch from a server.
#[derive(Clone, Debug)]
pub struct WStateSnapshot {
    /// The weighted graph at snapshot time.
    pub graph: WCscOverlay,
    /// Counters at snapshot time.
    pub stats: WDynStats,
    /// Matching cardinality at snapshot time.
    pub cardinality: usize,
    /// Matching weight at snapshot time.
    pub weight: f64,
}

impl WStateSnapshot {
    /// Compaction epoch of the snapshotted graph.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Live edge count of the snapshotted graph.
    pub fn nnz(&self) -> usize {
        self.graph.nnz()
    }
}

const TOL: f64 = 1e-12;
const COMPACT_DIVISOR: usize = 4;
const COMPACT_SLACK: usize = 64;

/// Incrementally maintained maximum *weight* matching over a mutable
/// weighted bipartite graph.
///
/// # Example
///
/// ```
/// use mcm_dyn::{WDynMatching, WDynOptions, WUpdate};
///
/// let mut wm = WDynMatching::new(2, 2, WDynOptions::default());
/// wm.apply_batch(&[
///     WUpdate::Insert(0, 0, 10.0),
///     WUpdate::Insert(0, 1, 1.0),
///     WUpdate::Insert(1, 1, 10.0),
/// ]);
/// assert_eq!(wm.weight(), 20.0);
/// let rep = wm.apply_batch(&[WUpdate::Delete(0, 0)]);
/// assert_eq!(rep.weight, 10.0, "c0 falls back to its light edge... or c1 does");
/// ```
pub struct WDynMatching {
    /// Column-oriented weighted graph: `cols.for_each_in_col(c)` walks
    /// column `c`'s `(row, weight)` candidates — the bidding direction.
    cols: WCscOverlay,
    /// Pattern-only transpose: `rows.for_each_in_col(r)` walks the
    /// columns adjacent to row `r` — the price-reset fan-out direction.
    rows: CscOverlay,
    m: Matching,
    prices: Vec<f64>,
    eps: f64,
    opts: WDynOptions,
    stats: WDynStats,
    weight: f64,
}

impl WDynMatching {
    /// An empty `n1 × n2` weighted graph with an empty matching.
    pub fn new(n1: usize, n2: usize, opts: WDynOptions) -> Self {
        Self {
            cols: WCscOverlay::empty(n1, n2),
            rows: CscOverlay::empty(n2, n1),
            m: Matching::empty(n1, n2),
            prices: vec![0.0; n1],
            eps: 1.0 / (2.0 * (n1 as f64 + 1.0)),
            opts,
            stats: WDynStats::default(),
            weight: 0.0,
        }
    }

    /// Builds from weighted triples and computes the initial matching by
    /// a cold parallel solve.
    pub fn from_weighted_triples(
        n1: usize,
        n2: usize,
        entries: Vec<(Vidx, Vidx, f64)>,
        opts: WDynOptions,
    ) -> Self {
        let a = WCsc::from_weighted_triples(n1, n2, entries);
        Self::from_wcsc(a, opts)
    }

    /// Builds from an already-assembled weighted CSC — the MCSB load path
    /// (`mcmd --weighted --load graph.mcsb`), which decodes pattern and
    /// values straight to a `WCsc` frozen base with no triple list.
    pub fn from_wcsc(a: WCsc, opts: WDynOptions) -> Self {
        let (n1, n2) = (a.nrows(), a.ncols());
        let mut wm = Self::new(n1, n2, opts);
        let mut rows = CscOverlay::empty(n2, n1);
        for (r, c) in a.pattern().iter() {
            rows.insert(c, r);
        }
        rows.compact();
        wm.cols = WCscOverlay::new(a);
        wm.rows = rows;
        wm.cold_solve();
        wm.weight = wm.recompute_weight();
        wm
    }

    /// The current matching.
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Current matching cardinality.
    pub fn cardinality(&self) -> usize {
        self.m.cardinality()
    }

    /// Current matching weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Current row prices (the dual certificate).
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The ε the prices certify.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &WDynStats {
        &self.stats
    }

    /// The weighted graph (column orientation).
    pub fn graph(&self) -> &WCscOverlay {
        &self.cols
    }

    /// Live edge count.
    pub fn nnz(&self) -> usize {
        self.cols.nnz()
    }

    /// Compaction epoch of the column overlay.
    pub fn epoch(&self) -> u64 {
        self.cols.epoch()
    }

    /// A consistent copy of the engine state for publication.
    pub fn snapshot_state(&self) -> WStateSnapshot {
        WStateSnapshot {
            graph: self.cols.clone(),
            stats: self.stats.clone(),
            cardinality: self.m.cardinality(),
            weight: self.weight,
        }
    }

    /// Full independent ε-CS verification of the current state (O(nnz)).
    pub fn verify_full(&self) -> Result<(), VerifyError> {
        verify_eps_cs(&self.cols.to_wcsc(), &self.m, &self.prices, self.eps)
    }

    /// Applies a batch of weighted updates and repairs the matching.
    pub fn apply_batch(&mut self, batch: &[WUpdate]) -> WBatchReport {
        let _span = mcm_obs::span("wdyn_apply_batch");
        let sw = mcm_obs::Stopwatch::new();
        let weight_before = self.weight;
        let mut rep = WBatchReport::default();
        let n2 = self.cols.ncols();

        // Worklist of columns whose ε-CS must be (re-)checked. A column
        // may legitimately re-enter after a later price reset changes its
        // best alternative, so membership is tracked per-entry, not
        // per-lifetime.
        let mut dirty: VecDeque<Vidx> = VecDeque::new();
        let mut in_dirty = vec![false; n2];
        let push_dirty = |q: &mut VecDeque<Vidx>, flags: &mut Vec<bool>, c: Vidx| {
            if !flags[c as usize] {
                flags[c as usize] = true;
                q.push_back(c);
            }
        };

        // --- Phase 1: apply updates, seed the dirty set. ----------------
        for &u in batch {
            match u {
                WUpdate::Insert(r, c, w) => {
                    let before = self.cols.weight(r, c);
                    if before == Some(w) {
                        continue; // pure no-op
                    }
                    self.cols.insert(r, c, w);
                    self.rows.insert(c, r);
                    rep.applied += 1;
                    rep.inserts += 1;
                    push_dirty(&mut dirty, &mut in_dirty, c);
                }
                WUpdate::Delete(r, c) => {
                    if !self.cols.delete(r, c) {
                        continue;
                    }
                    self.rows.delete(c, r);
                    rep.applied += 1;
                    rep.deletes += 1;
                    if self.m.mate_c.get(c) == r {
                        rep.matched_deletes += 1;
                        self.m.mate_c.set(c, NIL);
                        self.m.mate_r.set(r, NIL);
                        self.prices[r as usize] = 0.0;
                        push_dirty(&mut dirty, &mut in_dirty, c);
                        self.rows.for_each_in_col(r, |c2| {
                            push_dirty(&mut dirty, &mut in_dirty, c2);
                        });
                    }
                    // Deleting an unmatched edge only shrinks a candidate
                    // set — every ε-CS condition gets weaker. No work.
                }
            }
        }

        // --- Phase 2: ε-CS cascade. -------------------------------------
        // Unmatch violators; each unmatch frees a row whose price resets
        // to 0 (dual feasibility), which can invalidate neighbours — they
        // re-enter the worklist. A column is unmatched at most once, so
        // the total work is bounded by the touched neighbourhoods.
        let mut ever: Vec<Vidx> = Vec::new();
        let mut ever_flag = vec![false; n2];
        while let Some(c) = dirty.pop_front() {
            in_dirty[c as usize] = false;
            if !ever_flag[c as usize] {
                ever_flag[c as usize] = true;
                ever.push(c);
            }
            rep.dirty += 1;
            let r = self.m.mate_c.get(c);
            if r == NIL {
                continue; // unmatched candidates go to the re-auction below
            }
            let mut best = f64::NEG_INFINITY;
            self.cols.for_each_in_col(c, |r2, w| {
                best = best.max(w - self.prices[r2 as usize]);
            });
            let net = self.cols.weight(r, c).expect("matched edge must be live")
                - self.prices[r as usize];
            if net + self.eps < best.max(0.0) - TOL {
                self.m.mate_c.set(c, NIL);
                self.m.mate_r.set(r, NIL);
                self.prices[r as usize] = 0.0;
                rep.repaired += 1;
                push_dirty(&mut dirty, &mut in_dirty, c);
                self.rows.for_each_in_col(r, |c2| {
                    push_dirty(&mut dirty, &mut in_dirty, c2);
                });
            }
        }

        // --- Phase 3: repair. -------------------------------------------
        let bidders: Vec<Vidx> = ever
            .iter()
            .copied()
            .filter(|&c| self.m.mate_c.get(c) == NIL && self.cols.col_degree(c) > 0)
            .collect();
        let threshold = (self.opts.fallback_threshold * n2 as f64).ceil() as usize;
        if !bidders.is_empty() && bidders.len() > threshold {
            rep.cold = true;
            self.cold_solve();
        } else if !bidders.is_empty() {
            rep.rebids = self.reauction(bidders);
        }

        // --- Phase 4: account + certify. --------------------------------
        self.weight = self.recompute_weight();
        rep.weight = self.weight;
        rep.weight_delta = self.weight - weight_before;
        rep.cardinality = self.m.cardinality();
        self.maybe_compact();
        if self.opts.full_verify {
            self.verify_full().expect("post-batch eps-CS certificate");
        }

        self.stats.batches += 1;
        self.stats.updates += rep.applied as u64;
        self.stats.inserts += rep.inserts as u64;
        self.stats.deletes += rep.deletes as u64;
        self.stats.matched_deletes += rep.matched_deletes as u64;
        self.stats.dirty_bidders += rep.dirty as u64;
        self.stats.rebids += rep.rebids as u64;
        if rep.cold {
            self.stats.cold_solves += 1;
        } else {
            self.stats.incremental_batches += 1;
        }
        if rep.weight_delta >= 0.0 {
            self.stats.weight_gained += rep.weight_delta;
        } else {
            self.stats.weight_lost -= rep.weight_delta;
        }
        if mcm_obs::metrics_enabled() {
            let strategy = if rep.cold { "cold" } else { "incremental" };
            let labels = [("strategy", strategy)];
            mcm_obs::counter_add("mcm_wdyn_batches_total", &labels, 1);
            mcm_obs::counter_add("mcm_wdyn_updates_total", &labels, rep.applied as u64);
            mcm_obs::counter_add("mcm_wdyn_rebids_total", &labels, rep.rebids as u64);
            mcm_obs::observe_ns("mcm_wdyn_batch_seconds", &labels, sw.elapsed_ns());
            mcm_obs::gauge_set("mcm_matching_weight", &[], self.weight);
        }
        self.stats.last = rep.clone();
        rep
    }

    /// Serial forward auction from the current prices, seeded with the
    /// dirty bidders. Evicted owners re-enter the queue; a bidder whose
    /// best net value is negative retires (prices only rise, so its
    /// retirement stays certified).
    fn reauction(&mut self, bidders: Vec<Vidx>) -> usize {
        let _span = mcm_obs::span("wdyn_reauction");
        let mut queue: VecDeque<Vidx> = bidders.into();
        let mut rebids = 0usize;
        while let Some(c) = queue.pop_front() {
            rebids += 1;
            let mut best: Option<(f64, Vidx)> = None;
            let mut second = f64::NEG_INFINITY;
            self.cols.for_each_in_col(c, |r, w| {
                let net = w - self.prices[r as usize];
                match best {
                    None => best = Some((net, r)),
                    Some((bn, _)) if net > bn => {
                        second = bn;
                        best = Some((net, r));
                    }
                    Some(_) => second = second.max(net),
                }
            });
            let Some((best_net, r)) = best else { continue };
            if best_net < 0.0 {
                continue; // retire
            }
            let prev = self.m.mate_r.get(r);
            if prev != NIL {
                self.m.mate_c.set(prev, NIL);
                queue.push_back(prev);
            }
            self.m.mate_r.set(r, c);
            self.m.mate_c.set(c, r);
            let floor = second.max(0.0);
            self.prices[r as usize] += (best_net - floor) + self.eps;
        }
        rebids
    }

    /// Throws the certificate away and re-solves from scratch with the
    /// parallel ε-scaled auction.
    fn cold_solve(&mut self) {
        let _span = mcm_obs::span("wdyn_cold_solve");
        let a = self.cols.to_wcsc();
        let r = auction_mwm_par(
            &a,
            &AuctionOptions {
                threads: self.opts.threads.max(1),
                seed: self.opts.seed,
                eps_final: Some(self.eps),
                ..AuctionOptions::default()
            },
        );
        self.m = r.matching;
        self.prices = r.prices;
    }

    fn recompute_weight(&self) -> f64 {
        (0..self.cols.ncols() as Vidx)
            .filter_map(|c| {
                let r = self.m.mate_c.get(c);
                (r != NIL).then(|| self.cols.weight(r, c).expect("matched edge must be live"))
            })
            .sum()
    }

    fn maybe_compact(&mut self) {
        let bound = self.cols.nnz() / COMPACT_DIVISOR + COMPACT_SLACK;
        if self.cols.overlay_nnz() > bound {
            self.cols.compact();
            self.rows.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::weighted::auction_mwm;
    use mcm_sparse::permute::SplitMix64;

    fn oracle_weight(wm: &WDynMatching) -> f64 {
        let a = wm.graph().to_wcsc();
        auction_mwm(&a, wm.eps()).weight
    }

    #[test]
    fn insert_only_growth_tracks_the_oracle() {
        let mut wm =
            WDynMatching::new(6, 6, WDynOptions { full_verify: true, ..Default::default() });
        let mut rng = SplitMix64::new(0x11);
        for _ in 0..40 {
            let r = rng.below(6) as Vidx;
            let c = rng.below(6) as Vidx;
            let w = (rng.below(30) + 1) as f64;
            wm.apply_batch(&[WUpdate::Insert(r, c, w)]);
            assert!((wm.weight() - oracle_weight(&wm)).abs() < 1e-9);
        }
    }

    #[test]
    fn matched_delete_repairs_and_tracks_the_oracle() {
        let mut wm = WDynMatching::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
            WDynOptions { full_verify: true, ..Default::default() },
        );
        assert_eq!(wm.weight(), 20.0);
        let rep = wm.apply_batch(&[WUpdate::Delete(0, 0)]);
        assert_eq!(rep.matched_deletes, 1);
        // Best now: c0 on r1 (1.0) vs c1 on r1 (10.0) — keep c1·r1, c0
        // takes nothing profitable... c0 has only (1,0,1.0) left: matching
        // weight 10 + 1 = 11 if both fit, but both want r1? c0's edges:
        // (1, 0, 1.0); c1's: (0, 1, 1.0), (1, 1, 10.0). Optimal: c0–r1? No:
        // c0 can only use r1 (weight 1); c1 best on r1 (10). Optimal is
        // c1–r1 (10) + c0 unmatched? c0–r1 conflicts. c1–r0 (1) + c0–r1 (1)
        // = 2 < 10 + 0. So 10... plus c0 cannot match r0 (edge deleted).
        assert_eq!(rep.weight, 10.0);
        assert!((oracle_weight(&wm) - rep.weight).abs() < 1e-9);
    }

    #[test]
    fn randomized_churn_matches_cold_oracle_every_batch() {
        // Integer weights + ε < 1/(n+1): incremental and cold-solved
        // weights must agree exactly at every step, and the ε-CS
        // certificate must hold (full_verify panics otherwise).
        let (n1, n2) = (14usize, 12usize);
        let mut wm =
            WDynMatching::new(n1, n2, WDynOptions { full_verify: true, ..Default::default() });
        let mut live: Vec<(Vidx, Vidx)> = Vec::new();
        let mut rng = SplitMix64::new(0xD11);
        for step in 0..120 {
            let mut batch = Vec::new();
            for _ in 0..1 + rng.below(4) {
                if !live.is_empty() && rng.below(4) == 0 {
                    let k = rng.below(live.len() as u64) as usize;
                    let (r, c) = live.swap_remove(k);
                    batch.push(WUpdate::Delete(r, c));
                } else {
                    let r = rng.below(n1 as u64) as Vidx;
                    let c = rng.below(n2 as u64) as Vidx;
                    let w = (rng.below(40) + 1) as f64;
                    if !live.contains(&(r, c)) {
                        live.push((r, c));
                    }
                    batch.push(WUpdate::Insert(r, c, w));
                }
            }
            wm.apply_batch(&batch);
            let want = oracle_weight(&wm);
            assert!(
                (wm.weight() - want).abs() < 1e-9,
                "step {step}: incremental {} vs cold oracle {want}",
                wm.weight()
            );
        }
        assert!(wm.stats().incremental_batches > 0, "churn must exercise the warm path");
    }

    #[test]
    fn reweighting_the_matched_edge_downward_reroutes() {
        let mut wm = WDynMatching::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 10.0)],
            WDynOptions { full_verify: true, ..Default::default() },
        );
        assert_eq!(wm.weight(), 20.0);
        // Crush the heavy diagonal: the cross pairing (9 + 9) now wins.
        let rep = wm.apply_batch(&[WUpdate::Insert(0, 0, 1.0), WUpdate::Insert(1, 1, 1.0)]);
        assert_eq!(rep.weight, 18.0);
        assert!((oracle_weight(&wm) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn large_batch_triggers_cold_fallback() {
        let n = 16usize;
        let mut wm = WDynMatching::new(
            n,
            n,
            WDynOptions { fallback_threshold: 0.25, full_verify: true, ..Default::default() },
        );
        let mut batch = Vec::new();
        for i in 0..n as Vidx {
            batch.push(WUpdate::Insert(i, i, 5.0));
            batch.push(WUpdate::Insert(i, (i + 1) % n as Vidx, 3.0));
        }
        let rep = wm.apply_batch(&batch);
        assert!(rep.cold, "a batch dirtying every column must cold-solve");
        assert_eq!(rep.weight, 5.0 * n as f64);
        assert_eq!(wm.stats().cold_solves, 1);
        // A tiny follow-up stays incremental.
        let rep = wm.apply_batch(&[WUpdate::Insert(0, 1, 4.0)]);
        assert!(!rep.cold);
        assert!(wm.stats().incremental_batches >= 1);
    }

    #[test]
    fn deleting_unmatched_edges_is_free() {
        let mut wm = WDynMatching::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 10.0), (1, 0, 1.0), (1, 1, 10.0)],
            WDynOptions { full_verify: true, ..Default::default() },
        );
        assert_eq!(wm.weight(), 20.0);
        let rep = wm.apply_batch(&[WUpdate::Delete(1, 0)]);
        assert_eq!(rep.applied, 1);
        assert_eq!(rep.dirty, 0, "unmatched-edge deletes must not dirty anything");
        assert_eq!(rep.weight, 20.0);
    }

    #[test]
    fn no_op_updates_do_nothing() {
        let mut wm = WDynMatching::from_weighted_triples(
            2,
            2,
            vec![(0, 0, 7.0)],
            WDynOptions { full_verify: true, ..Default::default() },
        );
        let rep = wm.apply_batch(&[
            WUpdate::Insert(0, 0, 7.0), // same weight: no-op
            WUpdate::Delete(1, 1),      // not present: no-op
        ]);
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.weight, 7.0);
    }

    #[test]
    fn snapshot_is_isolated_from_later_batches() {
        let mut wm =
            WDynMatching::from_weighted_triples(2, 2, vec![(0, 0, 4.0)], WDynOptions::default());
        let snap = wm.snapshot_state();
        wm.apply_batch(&[WUpdate::Insert(1, 1, 9.0)]);
        assert_eq!(snap.weight, 4.0);
        assert_eq!(snap.nnz(), 1);
        assert_eq!(wm.weight(), 13.0);
    }
}
