//! `DynMatching`: incremental maximum-matching repair over a [`DynGraph`].
//!
//! The static MCM-DIST pipeline answers one question once; this engine
//! keeps the answer correct while the graph changes underneath it. The
//! insight is the paper's §V warm-start observation turned around: when a
//! batch of updates dirties only a few vertices, the stale matching is
//! still almost maximum, so repair is a handful of single-source
//! augmenting-path searches instead of a full solve.
//!
//! Per batch ([`DynMatching::apply_batch`]):
//!
//! 1. **Apply** every update to the graph. Deleting a *matched* edge
//!    unmatches it and marks both endpoints dirty; inserts are staged.
//! 2. **Classify** staged inserts on the post-batch graph: both endpoints
//!    free → match immediately; one free → that endpoint is dirty; both
//!    matched → an *interior* insert (the one case a local search can
//!    miss, because the new path threads through two matched vertices).
//! 3. **Switch** — mirroring the paper's `k < 2p²` path-vs-level
//!    parallelism rule: if the dirty set is larger than
//!    `fallback_threshold · (n1 + n2)`, hand the whole graph to the
//!    multi-source MS-BFS driver warm-started from the stale matching
//!    ([`mcm_core::mcm::maximum_matching_from`]); otherwise run one
//!    alternating BFS per dirty free vertex (column-rooted over `A`,
//!    row-rooted over `Aᵀ`), plus one global sweep per interior insert.
//! 4. **Certify** — a Berge check seeded at the still-free dirty vertices
//!    (the running dirty-region certificate; fallback and global sweeps
//!    end with a full certificate instead, since their terminating
//!    search saw every free column).
//!
//! Correctness of locality: updates are applied to a *maximum* matching,
//! so every new augmenting path must use a freed vertex (it becomes an
//! endpoint — interior vertices of an alternating path are matched) or an
//! inserted edge. Searches rooted at the dirty free vertices cover the
//! former and the one-endpoint-free inserts; interior inserts get global
//! sweeps. Once a search from a free vertex fails, later augmentations
//! never create a path from it (the classic settled-vertex lemma), so
//! each dirty vertex is searched once. `tests/dyn_oracle.rs` checks all
//! of this differentially against from-scratch Hopcroft–Karp.

use crate::graph::DynGraph;
use mcm_bsp::{DistCtx, EngineComm, SharedComm};
use mcm_core::auction::{auction, AuctionOptions};
use mcm_core::mcm::{maximum_matching_from_pooled, SolverPool};
use mcm_core::ppf::{ppf, PpfOptions};
use mcm_core::serial::hopcroft_karp;
use mcm_core::verify::VerifyError;
use mcm_core::{Matching, MatchingAlgo, McmOptions, SelectorStats};
use mcm_sparse::{Triples, Vidx, NIL};

/// One edge update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert edge (row, col); a no-op when already live.
    Insert(Vidx, Vidx),
    /// Delete edge (row, col); a no-op when not live.
    Delete(Vidx, Vidx),
}

/// Which communication backend services the warm-started MS-BFS fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackBackend {
    /// Serial cost-model simulator (`DistCtx::serial()`): modeled time
    /// only, zero threads — the historical default.
    Simulator,
    /// Real `EngineComm` mesh: `p` ranks (perfect square) × `threads`
    /// worker threads per rank, so large recomputes use all cores.
    Engine {
        /// Rank count (must be a perfect square).
        p: usize,
        /// Worker threads per rank.
        threads: usize,
    },
    /// Shared-memory `SharedComm` arena: `p` logical ranks (perfect
    /// square) accounted on the cost model, executed fused in one
    /// address space — the fastest wall-clock option for recomputes.
    Shared {
        /// Logical rank count (must be a perfect square).
        p: usize,
        /// Modeled threads per logical rank.
        threads: usize,
    },
}

/// Tunables of the incremental engine.
#[derive(Clone, Copy, Debug)]
pub struct DynOptions {
    /// Dirty-set fraction of `n1 + n2` above which the engine falls back
    /// to the warm-started multi-source MS-BFS driver instead of
    /// per-vertex path repair (the analogue of the paper's `k < 2p²`
    /// switch between path- and level-parallel augmentation).
    pub fallback_threshold: f64,
    /// Re-verify the full matching (structure + global Berge) after every
    /// batch through `mcm-core::verify` on the materialized graph.
    /// Expensive; meant for harnesses and `mcmd --full-verify`.
    pub full_verify: bool,
    /// Options handed to the MS-BFS fallback driver.
    pub fallback_opts: McmOptions,
    /// Backend that executes the fallback driver.
    pub backend: FallbackBackend,
    /// Which engine services the fallback solve. `MsBfs` warm-starts the
    /// distributed driver on `backend` (the historical default); `Ppf`
    /// warm-starts parallel Pothen–Fan; `Auction` re-solves cold (the
    /// auction cannot reuse a stale matching); `Auto` measures the
    /// current graph's [`SelectorStats`] per fallback and picks.
    pub algo: MatchingAlgo,
}

impl Default for DynOptions {
    fn default() -> Self {
        Self {
            fallback_threshold: 0.25,
            full_verify: false,
            // Warm starts carry their own structure; skip the relabeling
            // permutation so small repair solves stay allocation-light.
            fallback_opts: McmOptions { permute_seed: None, ..Default::default() },
            backend: FallbackBackend::Simulator,
            algo: MatchingAlgo::MsBfs,
        }
    }
}

/// How far the per-batch Berge certificate reached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CertScope {
    /// Seeded only at the batch's still-free dirty vertices.
    #[default]
    DirtyRegion,
    /// Every free column was a seed (fallback and global sweeps terminate
    /// with a path-free full search).
    Full,
}

/// What one [`DynMatching::apply_batch`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchReport {
    /// Updates that changed the graph (no-ops excluded).
    pub applied: usize,
    /// Edge insertions applied.
    pub inserts: usize,
    /// Edge deletions applied.
    pub deletes: usize,
    /// Deletions that hit a matched edge (both endpoints freed).
    pub matched_deletes: usize,
    /// Inserted edges matched immediately (both endpoints were free).
    pub immediate_matches: usize,
    /// Dirty set size after classification: still-free freed endpoints,
    /// one-free-endpoint inserts, and interior inserts.
    pub dirty: usize,
    /// Interior inserts (both endpoints matched) in this batch.
    pub interior_inserts: usize,
    /// Single-source repair searches run.
    pub local_searches: usize,
    /// Augmenting paths applied (local, sweep, or immediate excluded).
    pub repaired: usize,
    /// Matched edges flipped in by those paths (path half-lengths).
    pub repair_path_edges: usize,
    /// Longest single repair path (in matched edges).
    pub max_repair_path: usize,
    /// Global alternating sweeps run for interior inserts (includes the
    /// terminating empty one).
    pub global_sweeps: usize,
    /// Whether this batch took the warm-started MS-BFS fallback.
    pub fallback: bool,
    /// Scope of the batch's Berge certificate.
    pub cert_scope: CertScope,
    /// Free vertices the certificate seeded from.
    pub cert_seeds: usize,
    /// Matching cardinality after the batch.
    pub cardinality: usize,
}

/// Cumulative engine counters (the `McmStats` analogue for the dynamic
/// workload; `mcmd stats` prints these).
#[derive(Clone, Debug, Default)]
pub struct DynStats {
    /// Batches applied.
    pub batches: usize,
    /// Graph-changing updates across all batches.
    pub updates: usize,
    /// Inserts / deletes / matched-edge deletes across all batches.
    pub inserts: usize,
    pub deletes: usize,
    pub matched_deletes: usize,
    /// Immediate matches of fresh both-free edges.
    pub immediate_matches: usize,
    /// Single-source repair searches / successful augmentations.
    pub local_searches: usize,
    pub repaired: usize,
    /// Total and maximum repair path length (matched edges).
    pub repair_path_edges: usize,
    pub max_repair_path: usize,
    /// Interior inserts seen and global sweeps they cost.
    pub interior_inserts: usize,
    pub global_sweeps: usize,
    /// Warm-started MS-BFS fallbacks taken.
    pub fallbacks: usize,
    /// SpMSpV workspace calls / warm-buffer hits across those fallbacks
    /// (hits ≈ calls once the pooled plan is warm; see `SolverPool`).
    pub fallback_spmv_calls: u64,
    pub fallback_spmv_hits: u64,
    /// Engine that serviced the most recent fallback solve (`""` until
    /// one runs) — `mcmd stats` reports which engine actually ran.
    pub last_algo: &'static str,
    /// Berge-certificate seeds checked across all batches.
    pub cert_seeds: usize,
    /// The last batch's report.
    pub last: BatchReport,
}

/// An immutable, self-contained copy of the engine's state — what the
/// `mcm-serve` daemon publishes after each applied batch so reads
/// (`query`/`stats`/`snapshot`) are served without blocking behind the
/// writer. Cloning the graph is an O(nnz) memcpy of the frozen CSC plus
/// the (small, recently-compacted) overlays; the matching itself is not
/// carried — `cardinality` is the serving-relevant scalar, and the full
/// mate vectors stay private to the writer.
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    /// The graph as of publication (epoch queryable via `graph.epoch()`).
    pub graph: DynGraph,
    /// Cumulative engine counters as of publication.
    pub stats: DynStats,
    /// Matching cardinality as of publication.
    pub cardinality: usize,
}

impl StateSnapshot {
    /// Overlay-compaction epoch at publication.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Live edge count at publication.
    pub fn nnz(&self) -> usize {
        self.graph.nnz()
    }
}

/// A dynamic bipartite graph with an always-maximum matching.
///
/// # Example
///
/// ```
/// use mcm_dyn::{DynMatching, DynOptions, Update};
///
/// let mut dm = DynMatching::new(2, 2, DynOptions::default());
/// dm.apply_batch(&[Update::Insert(0, 0), Update::Insert(0, 1), Update::Insert(1, 0)]);
/// assert_eq!(dm.cardinality(), 2);
/// dm.apply_batch(&[Update::Delete(1, 0)]);
/// assert_eq!(dm.cardinality(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DynMatching {
    g: DynGraph,
    m: Matching,
    opts: DynOptions,
    stats: DynStats,
    // Generation-stamped BFS scratch (mirrors the SpMSpV workspace SPA:
    // no O(n) clears between searches).
    stamp: u32,
    row_stamp: Vec<u32>,
    col_stamp: Vec<u32>,
    /// Column that discovered each row (valid where `row_stamp == stamp`).
    row_parent: Vec<Vidx>,
    /// Row that discovered each column (valid where `col_stamp == stamp`).
    col_parent: Vec<Vidx>,
    queue: Vec<Vidx>,
    /// Pooled SpMSpV plan + MS-BFS vectors, warm across fallback solves
    /// (clones start cold — a clone is a new engine, not a resumed one).
    pool: SolverPool,
}

impl DynMatching {
    /// An empty dynamic graph with an empty (trivially maximum) matching.
    pub fn new(n1: usize, n2: usize, opts: DynOptions) -> Self {
        Self::with_graph(DynGraph::empty(n1, n2), Matching::empty(n1, n2), opts)
    }

    /// Builds from a static edge list and solves the initial maximum
    /// matching (Hopcroft–Karp; subsequent batches repair incrementally).
    pub fn from_triples(t: &Triples, opts: DynOptions) -> Self {
        let g = DynGraph::from_triples(t);
        let m = hopcroft_karp(&g.to_csc(), None);
        Self::with_graph(g, m, opts)
    }

    /// Builds from an already-compacted CSC base (the MCSB load path of
    /// `mcmd --load`) and solves the initial maximum matching.
    pub fn from_csc(a: mcm_sparse::Csc, opts: DynOptions) -> Self {
        let g = DynGraph::from_csc(a);
        let m = hopcroft_karp(&g.to_csc(), None);
        Self::with_graph(g, m, opts)
    }

    fn with_graph(g: DynGraph, m: Matching, opts: DynOptions) -> Self {
        let (n1, n2) = (g.n1(), g.n2());
        Self {
            g,
            m,
            opts,
            stats: DynStats::default(),
            stamp: 0,
            row_stamp: vec![0; n1],
            col_stamp: vec![0; n2],
            row_parent: vec![NIL; n1],
            col_parent: vec![NIL; n2],
            queue: Vec::new(),
            pool: SolverPool::new(),
        }
    }

    /// The current (maximum) matching.
    #[inline]
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// The current graph.
    #[inline]
    /// The options this engine was built with.
    pub fn opts(&self) -> &DynOptions {
        &self.opts
    }

    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// Current matching cardinality.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.m.cardinality()
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> &DynStats {
        &self.stats
    }

    /// An immutable copy of the published state (see [`StateSnapshot`]).
    pub fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot {
            graph: self.g.clone(),
            stats: self.stats.clone(),
            cardinality: self.m.cardinality(),
        }
    }

    /// Applies a batch of updates and repairs the matching back to
    /// maximum. Returns what the repair did.
    pub fn apply_batch(&mut self, updates: &[Update]) -> BatchReport {
        let _span = mcm_obs::span("apply_batch");
        let sw = mcm_obs::Stopwatch::new();
        let mut rep = BatchReport::default();
        let mut dirty_rows: Vec<Vidx> = Vec::new();
        let mut dirty_cols: Vec<Vidx> = Vec::new();
        let mut staged: Vec<(Vidx, Vidx)> = Vec::new();

        // 1. Apply to the graph; matched deletions free both endpoints.
        for &u in updates {
            match u {
                Update::Insert(r, c) => {
                    if self.g.insert(r, c) {
                        rep.inserts += 1;
                        staged.push((r, c));
                    }
                }
                Update::Delete(r, c) => {
                    if self.g.delete(r, c) {
                        rep.deletes += 1;
                        if self.m.mate_r.get(r) == c {
                            self.m.mate_r.set(r, NIL);
                            self.m.mate_c.set(c, NIL);
                            rep.matched_deletes += 1;
                            dirty_rows.push(r);
                            dirty_cols.push(c);
                        }
                    }
                }
            }
        }
        rep.applied = rep.inserts + rep.deletes;

        // 2. Classify staged inserts on the post-batch graph.
        let mut interior = 0usize;
        for (r, c) in staged {
            if !self.g.contains(r, c) {
                continue; // deleted again within the batch
            }
            match (self.m.row_matched(r), self.m.col_matched(c)) {
                (false, false) => {
                    self.m.add(r, c);
                    rep.immediate_matches += 1;
                }
                (false, true) => dirty_rows.push(r),
                (true, false) => dirty_cols.push(c),
                (true, true) => interior += 1,
            }
        }
        rep.interior_inserts = interior;

        // Dirty set: deduplicated, still-free endpoints plus interiors.
        dirty_rows.sort_unstable();
        dirty_rows.dedup();
        dirty_rows.retain(|&r| !self.m.row_matched(r));
        dirty_cols.sort_unstable();
        dirty_cols.dedup();
        dirty_cols.retain(|&c| !self.m.col_matched(c));
        rep.dirty = dirty_rows.len() + dirty_cols.len() + interior;

        // 3. Repair: per-vertex paths, or the warm-started MS-BFS driver.
        let budget = self.opts.fallback_threshold * (self.g.n1() + self.g.n2()) as f64;
        if rep.dirty > 0 && rep.dirty as f64 > budget {
            self.fallback();
            rep.fallback = true;
            rep.cert_scope = CertScope::Full;
        } else {
            for &c in &dirty_cols {
                if self.m.col_matched(c) {
                    continue; // matched by an earlier repair in this batch
                }
                rep.local_searches += 1;
                if let Some(flipped) = self.search_from_col(c, true) {
                    rep.repaired += 1;
                    rep.repair_path_edges += flipped;
                    rep.max_repair_path = rep.max_repair_path.max(flipped);
                }
            }
            for &r in &dirty_rows {
                if self.m.row_matched(r) {
                    continue;
                }
                rep.local_searches += 1;
                if let Some(flipped) = self.search_from_row(r, true) {
                    rep.repaired += 1;
                    rep.repair_path_edges += flipped;
                    rep.max_repair_path = rep.max_repair_path.max(flipped);
                }
            }
            if interior > 0 {
                // A path between two *settled* free vertices can thread an
                // interior insert; only a full sweep sees those.
                loop {
                    rep.global_sweeps += 1;
                    let free = self.m.unmatched_cols();
                    match self.search_from_col_set(&free, true) {
                        Some(flipped) => {
                            rep.repaired += 1;
                            rep.repair_path_edges += flipped;
                            rep.max_repair_path = rep.max_repair_path.max(flipped);
                        }
                        None => break,
                    }
                }
                rep.cert_scope = CertScope::Full;
            } else {
                // 4. Running Berge certificate on the dirty region.
                rep.cert_scope = CertScope::DirtyRegion;
                dirty_cols.retain(|&c| !self.m.col_matched(c));
                dirty_rows.retain(|&r| !self.m.row_matched(r));
                rep.cert_seeds = dirty_cols.len() + dirty_rows.len();
                let clean = dirty_cols.iter().all(|&c| self.search_from_col(c, false).is_none())
                    && dirty_rows.iter().all(|&r| self.search_from_row(r, false).is_none());
                assert!(clean, "dirty-region Berge certificate failed after repair");
            }
        }
        rep.cardinality = self.m.cardinality();

        if self.opts.full_verify {
            self.verify_full().expect("full per-batch verification failed");
        }

        // Satellite: every batch reports its repair-strategy decision —
        // "warm_start" when the dirty set blew the budget and the batch
        // re-ran the MS-BFS driver, "incremental" otherwise.
        if mcm_obs::metrics_enabled() {
            let strategy = if rep.fallback { "warm_start" } else { "incremental" };
            let labels = [("strategy", strategy)];
            mcm_obs::counter_add("mcm_dyn_batches_total", &labels, 1);
            mcm_obs::counter_add("mcm_dyn_updates_total", &labels, rep.applied as u64);
            mcm_obs::counter_add("mcm_dyn_repaired_total", &labels, rep.repaired as u64);
            mcm_obs::observe_ns("mcm_dyn_batch_seconds", &labels, sw.elapsed_ns());
        }

        self.absorb(&rep);
        rep
    }

    /// Materializes the graph and re-verifies the matching end to end
    /// (structural validity + full Berge) through `mcm-core::verify`.
    pub fn verify_full(&self) -> Result<(), VerifyError> {
        mcm_core::verify::verify(&self.g.to_csc(), &self.m)
    }

    fn absorb(&mut self, rep: &BatchReport) {
        let s = &mut self.stats;
        s.batches += 1;
        s.updates += rep.applied;
        s.inserts += rep.inserts;
        s.deletes += rep.deletes;
        s.matched_deletes += rep.matched_deletes;
        s.immediate_matches += rep.immediate_matches;
        s.local_searches += rep.local_searches;
        s.repaired += rep.repaired;
        s.repair_path_edges += rep.repair_path_edges;
        s.max_repair_path = s.max_repair_path.max(rep.max_repair_path);
        s.interior_inserts += rep.interior_inserts;
        s.global_sweeps += rep.global_sweeps;
        s.fallbacks += usize::from(rep.fallback);
        s.cert_seeds += rep.cert_seeds;
        s.last = *rep;
    }

    /// Large-dirty-set path: hand the stale matching to the multi-source
    /// MS-BFS driver (§V warm start) on the configured backend — the
    /// serial simulator by default, or the real thread-per-rank mesh
    /// engine so big recomputes use all cores.
    fn fallback(&mut self) {
        let _span = mcm_obs::span("warm_start_fallback");
        let stale = std::mem::replace(&mut self.m, Matching::empty(0, 0));
        let was_auto = self.opts.algo == MatchingAlgo::Auto;
        let algo = match self.opts.algo {
            MatchingAlgo::Auto => SelectorStats::measure_csc(&self.g.to_csc()).choose(),
            concrete => concrete,
        };
        self.stats.last_algo = algo.name();
        mcm_obs::counter_add(
            "mcm_algo_runs_total",
            &[("algo", algo.name()), ("selector", if was_auto { "auto" } else { "explicit" })],
            1,
        );
        // Shared-memory engines take a flat worker count; map the
        // backend's rank×thread shape onto it.
        let threads = match self.opts.backend {
            FallbackBackend::Simulator => 1,
            FallbackBackend::Engine { p, threads } => p * threads,
            FallbackBackend::Shared { threads, .. } => threads,
        };
        self.m = match algo {
            MatchingAlgo::MsBfs | MatchingAlgo::Auto => {
                let t = self.g.to_triples();
                let (pool, opts) = (&mut self.pool, &self.opts.fallback_opts);
                let r = match self.opts.backend {
                    FallbackBackend::Simulator => {
                        let mut ctx = DistCtx::serial();
                        maximum_matching_from_pooled(&mut ctx, &t, stale, opts, pool)
                    }
                    FallbackBackend::Engine { p, threads } => {
                        let mut comm = EngineComm::new(p, threads);
                        maximum_matching_from_pooled(&mut comm, &t, stale, opts, pool)
                    }
                    FallbackBackend::Shared { p, threads } => {
                        let mut comm = SharedComm::new(p, threads);
                        maximum_matching_from_pooled(&mut comm, &t, stale, opts, pool)
                    }
                };
                self.stats.fallback_spmv_calls += r.stats.spmv_workspace_calls;
                self.stats.fallback_spmv_hits += r.stats.spmv_workspace_hits;
                r.matching
            }
            MatchingAlgo::Ppf => {
                let opts = PpfOptions { threads, fairness: true, seed: 0 };
                ppf(&self.g.to_csc(), Some(stale), &opts).matching
            }
            MatchingAlgo::Auction => {
                let opts = AuctionOptions { threads, ..AuctionOptions::default() };
                auction(&self.g.to_csc(), &opts).matching
            }
        };
    }

    fn bump_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX {
            self.row_stamp.fill(0);
            self.col_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// Alternating BFS rooted at free column `c0`. With `commit`, flips
    /// the discovered augmenting path and returns its length in matched
    /// edges; without, only reports whether a path exists.
    fn search_from_col(&mut self, c0: Vidx, commit: bool) -> Option<usize> {
        self.search_from_col_set(&[c0], commit)
    }

    /// Alternating BFS from a set of free columns (column → rows over `A`,
    /// matched row → mate column), one path per call.
    fn search_from_col_set(&mut self, seeds: &[Vidx], commit: bool) -> Option<usize> {
        let stamp = self.bump_stamp();
        let Self { g, m, row_stamp, col_stamp, row_parent, queue, .. } = self;
        queue.clear();
        for &c in seeds {
            debug_assert!(!m.col_matched(c));
            if col_stamp[c as usize] != stamp {
                col_stamp[c as usize] = stamp;
                queue.push(c);
            }
        }
        let mut head = 0;
        let mut end_row = NIL;
        'bfs: while head < queue.len() {
            let c = queue[head];
            head += 1;
            let mut found = NIL;
            g.for_each_row_in_col(c, |r| {
                if found != NIL || row_stamp[r as usize] == stamp {
                    return;
                }
                row_stamp[r as usize] = stamp;
                row_parent[r as usize] = c;
                let mate = m.mate_r.get(r);
                if mate == NIL {
                    found = r;
                } else if col_stamp[mate as usize] != stamp {
                    col_stamp[mate as usize] = stamp;
                    queue.push(mate);
                }
            });
            if found != NIL {
                end_row = found;
                break 'bfs;
            }
        }
        if end_row == NIL {
            return None;
        }
        if !commit {
            return Some(0);
        }
        // Flip along parent pointers back to the free seed column.
        let mut r = end_row;
        let mut flipped = 0;
        loop {
            let c = row_parent[r as usize];
            let prev = m.mate_c.get(c);
            m.mate_r.set(r, c);
            m.mate_c.set(c, r);
            flipped += 1;
            if prev == NIL {
                return Some(flipped);
            }
            r = prev;
        }
    }

    /// Alternating BFS rooted at free row `r0` (row → columns over `Aᵀ`,
    /// matched column → mate row) — the direction deletions of matched
    /// edges need, since they free a row endpoint too.
    fn search_from_row(&mut self, r0: Vidx, commit: bool) -> Option<usize> {
        let stamp = self.bump_stamp();
        let Self { g, m, row_stamp, col_stamp, col_parent, queue, .. } = self;
        debug_assert!(!m.row_matched(r0));
        queue.clear();
        row_stamp[r0 as usize] = stamp;
        queue.push(r0);
        let mut head = 0;
        let mut end_col = NIL;
        'bfs: while head < queue.len() {
            let r = queue[head];
            head += 1;
            let mut found = NIL;
            g.for_each_col_in_row(r, |c| {
                if found != NIL || col_stamp[c as usize] == stamp {
                    return;
                }
                col_stamp[c as usize] = stamp;
                col_parent[c as usize] = r;
                let mate = m.mate_c.get(c);
                if mate == NIL {
                    found = c;
                } else if row_stamp[mate as usize] != stamp {
                    row_stamp[mate as usize] = stamp;
                    queue.push(mate);
                }
            });
            if found != NIL {
                end_col = found;
                break 'bfs;
            }
        }
        if end_col == NIL {
            return None;
        }
        if !commit {
            return Some(0);
        }
        let mut c = end_col;
        let mut flipped = 0;
        loop {
            let r = col_parent[c as usize];
            let prev = m.mate_r.get(r);
            m.mate_c.set(c, r);
            m.mate_r.set(r, c);
            flipped += 1;
            if prev == NIL {
                return Some(flipped);
            }
            c = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::permute::SplitMix64;

    fn opts() -> DynOptions {
        DynOptions { full_verify: true, ..DynOptions::default() }
    }

    #[test]
    fn builds_and_matches_incrementally() {
        let mut dm = DynMatching::new(3, 3, opts());
        let r = dm.apply_batch(&[Update::Insert(0, 0), Update::Insert(1, 1), Update::Insert(2, 2)]);
        assert_eq!(r.immediate_matches, 3);
        assert_eq!(dm.cardinality(), 3);
    }

    #[test]
    fn matched_delete_frees_both_endpoints_and_repairs() {
        // Z-graph: r0-c0, r0-c1, r1-c0; maximum is 2 via the anti-diagonal.
        let t = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let mut dm = DynMatching::from_triples(&t, opts());
        assert_eq!(dm.cardinality(), 2);
        // Delete the matched (1, 0): only (0, c) edges remain → maximum 1.
        let r = dm.apply_batch(&[Update::Delete(1, 0)]);
        assert_eq!(r.matched_deletes, 1);
        assert_eq!(dm.cardinality(), 1);
        // Reinsert: repair must climb back to 2 through a local search.
        let r = dm.apply_batch(&[Update::Insert(1, 0)]);
        assert!(r.repaired >= 1 || r.immediate_matches >= 1);
        assert_eq!(dm.cardinality(), 2);
    }

    #[test]
    fn interior_insert_is_found_by_global_sweep() {
        // M = {(r0,c0), (r1,c1)}, free c2 (edge to r0) and free r2 (edge
        // to c1): maximum is 2 until the interior edge (r1, c0)... wait —
        // the enabling edge is (r0... construct exactly the case where the
        // new edge joins two matched vertices and enables c2 ⇝ r2.
        let t = Triples::from_edges(
            3,
            3,
            vec![(0, 0), (1, 1), (0, 2), (2, 1)], // matched: (0,0), (1,1)
        );
        let mut dm = DynMatching::from_triples(&t, opts());
        assert_eq!(dm.cardinality(), 2);
        // Insert (1, 0): both endpoints matched (r1–c1, r0–c0). New path:
        // c2 → r0 → c0 → r1 → c1 → r2.
        let r = dm.apply_batch(&[Update::Insert(1, 0)]);
        assert_eq!(r.interior_inserts, 1);
        assert!(r.global_sweeps >= 1, "interior insert must trigger a sweep");
        assert_eq!(r.cert_scope, CertScope::Full);
        assert_eq!(dm.cardinality(), 3);
    }

    #[test]
    fn fallback_threshold_zero_always_takes_msbfs() {
        let t = Triples::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let mut dm = DynMatching::from_triples(
            &t,
            DynOptions { fallback_threshold: 0.0, full_verify: true, ..DynOptions::default() },
        );
        let r = dm.apply_batch(&[Update::Delete(1, 0)]);
        assert!(r.fallback, "threshold 0 must always fall back");
        assert_eq!(dm.cardinality(), 1);
        let r = dm.apply_batch(&[Update::Insert(1, 1)]);
        assert!(r.fallback);
        assert_eq!(dm.cardinality(), 2);
    }

    #[test]
    fn fallback_pool_is_warm_by_the_second_solve() {
        // Two forced fallbacks on a shrinking graph: the first pays the
        // cold SpMSpV workspace allocations, the second must be served
        // entirely from the pooled plan (the ~1.3ms/solve lever).
        let t = Triples::from_edges(4, 4, vec![(0, 0), (0, 1), (1, 0), (2, 2), (3, 3), (1, 2)]);
        let mut dm = DynMatching::from_triples(
            &t,
            DynOptions { fallback_threshold: 0.0, full_verify: true, ..DynOptions::default() },
        );
        dm.apply_batch(&[Update::Delete(3, 3)]);
        let s1 = dm.stats().clone();
        assert!(s1.fallback_spmv_calls > 0, "first batch must take the MS-BFS fallback");
        dm.apply_batch(&[Update::Delete(2, 2)]);
        let s2 = dm.stats();
        let calls = s2.fallback_spmv_calls - s1.fallback_spmv_calls;
        let hits = s2.fallback_spmv_hits - s1.fallback_spmv_hits;
        assert!(calls > 0, "second batch must also fall back");
        assert_eq!(hits, calls, "second fallback must reuse the warm pooled plan");
    }

    #[test]
    fn engine_backend_fallback_matches_simulator() {
        // Same forced-fallback batches, once per backend: cardinalities
        // must track each other (both are maximum, certified per batch).
        let (n1, n2) = (10usize, 10usize);
        for backend in [
            FallbackBackend::Simulator,
            FallbackBackend::Engine { p: 4, threads: 1 },
            FallbackBackend::Engine { p: 1, threads: 2 },
            FallbackBackend::Shared { p: 4, threads: 1 },
            FallbackBackend::Shared { p: 1, threads: 2 },
        ] {
            let mut rng = SplitMix64::new(0xD15C);
            let mut dm = DynMatching::new(
                n1,
                n2,
                DynOptions {
                    fallback_threshold: 0.0, // every non-trivial batch falls back
                    full_verify: true,
                    backend,
                    ..DynOptions::default()
                },
            );
            let mut fell_back = false;
            for _ in 0..12 {
                let mut ops = Vec::new();
                for _ in 0..5 {
                    let r = rng.below(n1 as u64) as Vidx;
                    let c = rng.below(n2 as u64) as Vidx;
                    if rng.below(4) < 3 {
                        ops.push(Update::Insert(r, c));
                    } else {
                        ops.push(Update::Delete(r, c));
                    }
                }
                fell_back |= dm.apply_batch(&ops).fallback;
                let a = dm.graph().to_csc();
                let want = hopcroft_karp(&a, None).cardinality();
                assert_eq!(dm.cardinality(), want, "backend {backend:?} diverged from HK");
            }
            assert!(fell_back, "backend {backend:?} never exercised the fallback");
        }
    }

    #[test]
    fn every_fallback_algo_tracks_hopcroft_karp() {
        // Same forced-fallback update stream under each portfolio engine:
        // all must stay maximum (full_verify certifies every batch) and
        // report which engine serviced the solve.
        let (n1, n2) = (12usize, 12usize);
        for algo in
            [MatchingAlgo::MsBfs, MatchingAlgo::Ppf, MatchingAlgo::Auction, MatchingAlgo::Auto]
        {
            let mut rng = SplitMix64::new(0xA160);
            let mut dm = DynMatching::new(
                n1,
                n2,
                DynOptions {
                    fallback_threshold: 0.0,
                    full_verify: true,
                    algo,
                    ..DynOptions::default()
                },
            );
            let mut fell_back = false;
            for _ in 0..10 {
                let mut ops = Vec::new();
                for _ in 0..6 {
                    let r = rng.below(n1 as u64) as Vidx;
                    let c = rng.below(n2 as u64) as Vidx;
                    if rng.below(4) < 3 {
                        ops.push(Update::Insert(r, c));
                    } else {
                        ops.push(Update::Delete(r, c));
                    }
                }
                fell_back |= dm.apply_batch(&ops).fallback;
                let a = dm.graph().to_csc();
                let want = hopcroft_karp(&a, None).cardinality();
                assert_eq!(dm.cardinality(), want, "algo {algo} diverged from HK");
            }
            assert!(fell_back, "algo {algo} never exercised the fallback");
            let last = dm.stats().last_algo;
            match algo {
                MatchingAlgo::Auto => {
                    assert!(
                        MatchingAlgo::CONCRETE.iter().any(|c| c.name() == last),
                        "auto must resolve to a concrete engine, got {last:?}"
                    );
                }
                concrete => assert_eq!(last, concrete.name()),
            }
        }
    }

    #[test]
    fn noop_updates_change_nothing() {
        let t = Triples::from_edges(2, 2, vec![(0, 0)]);
        let mut dm = DynMatching::from_triples(&t, opts());
        let r = dm.apply_batch(&[Update::Insert(0, 0), Update::Delete(1, 1)]);
        assert_eq!(r.applied, 0);
        assert_eq!(r.dirty, 0);
        assert_eq!(dm.cardinality(), 1);
    }

    #[test]
    fn insert_then_delete_within_one_batch_cancels() {
        let mut dm = DynMatching::new(2, 2, opts());
        let r = dm.apply_batch(&[Update::Insert(0, 0), Update::Delete(0, 0)]);
        assert_eq!(dm.cardinality(), 0);
        assert_eq!(r.immediate_matches, 0, "cancelled insert must not match");
        assert!(!dm.graph().contains(0, 0));
    }

    #[test]
    fn randomized_batches_track_hopcroft_karp() {
        // A miniature of tests/dyn_oracle.rs kept in-crate: random
        // batches, after each one the cardinality must equal HK from
        // scratch on the materialized graph.
        let (n1, n2) = (14usize, 12usize);
        let mut rng = SplitMix64::new(0xCAFE);
        for threshold in [0.0, 0.15, 2.0] {
            let mut dm = DynMatching::new(
                n1,
                n2,
                DynOptions {
                    fallback_threshold: threshold,
                    full_verify: true,
                    ..DynOptions::default()
                },
            );
            for batch in 0..25 {
                let mut ops = Vec::new();
                for _ in 0..6 {
                    let r = rng.below(n1 as u64) as Vidx;
                    let c = rng.below(n2 as u64) as Vidx;
                    if rng.below(5) < 3 {
                        ops.push(Update::Insert(r, c));
                    } else {
                        ops.push(Update::Delete(r, c));
                    }
                }
                dm.apply_batch(&ops);
                let a = dm.graph().to_csc();
                let want = hopcroft_karp(&a, None).cardinality();
                assert_eq!(
                    dm.cardinality(),
                    want,
                    "threshold {threshold} batch {batch} diverged from HK"
                );
            }
            assert_eq!(dm.stats().batches, 25);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut dm = DynMatching::new(4, 4, opts());
        dm.apply_batch(&[Update::Insert(0, 0), Update::Insert(1, 1)]);
        dm.apply_batch(&[Update::Delete(0, 0)]);
        let s = dm.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.matched_deletes, 1);
        assert_eq!(s.immediate_matches, 2);
        assert_eq!(s.last.deletes, 1);
    }
}
