//! The `mcmd` wire protocol: one command per line.
//!
//! Two spellings are accepted and can be mixed freely on one stream:
//!
//! * plain text — `insert 3 5`, `delete 3 5`, `query`, `stats`,
//!   `metrics`, `snapshot out.mtx`, `quit`; blank lines and `#` comments
//!   ignored;
//! * JSONL — `{"op": "insert", "u": 3, "v": 5}` and friends. The parser
//!   is deliberately a tokenizer, not a JSON library (the workspace has
//!   no serde and the grammar is six fixed shapes): structural
//!   punctuation is stripped and `u`/`v`/`path` keys are honoured, so
//!   key order does not matter.
//!
//! Row/column indices are 0-based, matching the rest of the workspace
//! (`mcm-sparse` converts at the Matrix Market boundary only).

use mcm_sparse::Vidx;

/// One parsed `mcmd` command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Stage edge (row, col) for insertion.
    Insert(Vidx, Vidx),
    /// Stage edge (row, col) for deletion.
    Delete(Vidx, Vidx),
    /// Flush staged updates, repair, report the cardinality.
    Query,
    /// Flush, repair, report cumulative engine statistics.
    Stats,
    /// Flush, repair, dump the metrics registry in Prometheus text
    /// exposition, terminated by a `# EOF` line.
    Metrics,
    /// Flush, repair, write the live graph as Matrix Market to the path.
    Snapshot(String),
    /// Flush, repair, exit cleanly.
    Quit,
}

/// Parses one input line. `Ok(None)` for blank lines and `#` comments;
/// `Err` carries a message suitable for an `error <msg>` response line.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    // Strip JSON structure; what remains is whitespace-separated tokens
    // in both spellings.
    let norm: String =
        trimmed
            .chars()
            .map(|ch| {
                if matches!(ch, '{' | '}' | '[' | ']' | '"' | '\'' | ',' | ':') {
                    ' '
                } else {
                    ch
                }
            })
            .collect();
    let toks: Vec<&str> = norm.split_whitespace().collect();
    let verb_pos = toks
        .iter()
        .position(|t| {
            matches!(
                t.to_ascii_lowercase().as_str(),
                "insert" | "delete" | "query" | "stats" | "metrics" | "snapshot" | "quit" | "exit"
            )
        })
        .ok_or_else(|| format!("unrecognized command: {trimmed}"))?;
    let verb = toks[verb_pos].to_ascii_lowercase();
    match verb.as_str() {
        "query" => Ok(Some(Command::Query)),
        "stats" => Ok(Some(Command::Stats)),
        "metrics" => Ok(Some(Command::Metrics)),
        "quit" | "exit" => Ok(Some(Command::Quit)),
        "snapshot" => {
            let path = value_after_key(&toks, "path")
                .or_else(|| toks.get(verb_pos + 1).copied())
                .filter(|p| !p.eq_ignore_ascii_case("path"))
                .ok_or_else(|| "snapshot needs a path".to_string())?;
            Ok(Some(Command::Snapshot(path.to_string())))
        }
        verb @ ("insert" | "delete") => {
            let (u, v) = match (keyed_index(&toks, "u"), keyed_index(&toks, "v")) {
                (Some(u), Some(v)) => (u, v),
                _ => positional_pair(&toks, verb_pos)
                    .ok_or_else(|| format!("{verb} needs two vertex indices: {trimmed}"))?,
            };
            Ok(Some(if verb == "insert" { Command::Insert(u, v) } else { Command::Delete(u, v) }))
        }
        _ => unreachable!("position() only matches the verbs above"),
    }
}

/// The token following key `k` (for JSONL `"u": 3` / `"path": "x"` pairs).
fn value_after_key<'a>(toks: &[&'a str], k: &str) -> Option<&'a str> {
    toks.iter().position(|t| t.eq_ignore_ascii_case(k)).and_then(|i| toks.get(i + 1)).copied()
}

fn keyed_index(toks: &[&str], k: &str) -> Option<Vidx> {
    value_after_key(toks, k).and_then(|t| t.parse::<Vidx>().ok())
}

/// The first two integer tokens after the verb (plain-text spelling).
fn positional_pair(toks: &[&str], verb_pos: usize) -> Option<(Vidx, Vidx)> {
    let mut ints = toks[verb_pos + 1..].iter().filter_map(|t| t.parse::<Vidx>().ok());
    Some((ints.next()?, ints.next()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_commands_parse() {
        assert_eq!(parse_command("insert 3 5").unwrap(), Some(Command::Insert(3, 5)));
        assert_eq!(parse_command("  delete 0 12 ").unwrap(), Some(Command::Delete(0, 12)));
        assert_eq!(parse_command("query").unwrap(), Some(Command::Query));
        assert_eq!(parse_command("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse_command("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(
            parse_command("snapshot /tmp/x.mtx").unwrap(),
            Some(Command::Snapshot("/tmp/x.mtx".into()))
        );
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("exit").unwrap(), Some(Command::Quit));
    }

    #[test]
    fn jsonl_commands_parse_in_any_key_order() {
        assert_eq!(
            parse_command(r#"{"op": "insert", "u": 3, "v": 5}"#).unwrap(),
            Some(Command::Insert(3, 5))
        );
        assert_eq!(
            parse_command(r#"{"v": 5, "u": 3, "op": "delete"}"#).unwrap(),
            Some(Command::Delete(3, 5))
        );
        assert_eq!(parse_command(r#"{"op": "query"}"#).unwrap(), Some(Command::Query));
        assert_eq!(parse_command(r#"{"op": "metrics"}"#).unwrap(), Some(Command::Metrics));
        assert_eq!(
            parse_command(r#"{"op": "snapshot", "path": "out.mtx"}"#).unwrap(),
            Some(Command::Snapshot("out.mtx".into()))
        );
    }

    #[test]
    fn blanks_and_comments_are_skipped() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("# warmup done").unwrap(), None);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_command("frobnicate 1 2").is_err());
        assert!(parse_command("insert 1").is_err());
        assert!(parse_command("insert x y").is_err());
        assert!(parse_command("snapshot").is_err());
    }
}
