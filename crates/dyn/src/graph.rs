//! `DynGraph`: a mutable bipartite graph with both-sided adjacency.
//!
//! The repair engine needs two scan directions the static pipeline never
//! mixes: column → rows (the matrix `A`, for augmenting searches rooted at
//! free columns) and row → columns (`Aᵀ`, for searches rooted at rows
//! freed by matched-edge deletions). `DynGraph` keeps one
//! [`CscOverlay`](mcm_sparse::CscOverlay) per direction, applies every
//! update to both, and compacts them together once the overlay outgrows a
//! fraction of the base — the epoch bump is the cache-invalidation signal
//! for anything keyed on the frozen base (the warm-start fallback
//! redistributes per epoch, mirroring how `DistMatrix` freezes `Triples`).

use mcm_sparse::{Csc, CscOverlay, Triples, Vidx};

/// Overlay growth bound before auto-compaction: compact when the staged
/// overlay exceeds `nnz / COMPACT_DIVISOR + COMPACT_SLACK` entries. The
/// slack term keeps tiny graphs from compacting on every update.
const COMPACT_DIVISOR: usize = 4;
const COMPACT_SLACK: usize = 64;

/// A dynamic `n1 × n2` bipartite graph: column adjacency (`A`) and row
/// adjacency (`Aᵀ`) kept in lock-step through insert/delete overlays.
///
/// # Example
///
/// ```
/// use mcm_dyn::DynGraph;
///
/// let mut g = DynGraph::empty(3, 4);
/// assert!(g.insert(1, 2));
/// assert!(!g.insert(1, 2));
/// assert_eq!(g.nnz(), 1);
/// let mut rows = Vec::new();
/// g.for_each_row_in_col(2, |r| rows.push(r));
/// assert_eq!(rows, vec![1]);
/// let mut cols = Vec::new();
/// g.for_each_col_in_row(1, |c| cols.push(c));
/// assert_eq!(cols, vec![2]);
/// ```
#[derive(Clone, Debug)]
pub struct DynGraph {
    /// `n1 × n2`: rows adjacent to each column (the matrix `A`).
    cols: CscOverlay,
    /// `n2 × n1`: columns adjacent to each row (`Aᵀ`).
    rows: CscOverlay,
}

impl DynGraph {
    /// An empty dynamic graph with `n1` row and `n2` column vertices.
    pub fn empty(n1: usize, n2: usize) -> Self {
        Self { cols: CscOverlay::empty(n1, n2), rows: CscOverlay::empty(n2, n1) }
    }

    /// Builds from a static edge list (the initial compacted base).
    pub fn from_triples(t: &Triples) -> Self {
        Self { cols: CscOverlay::new(t.to_csc()), rows: CscOverlay::new(t.transposed().to_csc()) }
    }

    /// Builds from an already-compacted CSC base — the MCSB load path
    /// (`mcmd --load graph.mcsb`), which decodes straight to CSC and never
    /// owns a triple list. The row adjacency is the explicit transpose.
    pub fn from_csc(a: Csc) -> Self {
        let at = a.transpose();
        Self { cols: CscOverlay::new(a), rows: CscOverlay::new(at) }
    }

    /// Row vertices.
    #[inline]
    pub fn n1(&self) -> usize {
        self.cols.nrows()
    }

    /// Column vertices.
    #[inline]
    pub fn n2(&self) -> usize {
        self.cols.ncols()
    }

    /// Live edge count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.nnz()
    }

    /// Compaction epoch (bumped whenever the frozen bases are rebuilt).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.cols.epoch()
    }

    /// `true` when edge `(r, c)` is live.
    #[inline]
    pub fn contains(&self, r: Vidx, c: Vidx) -> bool {
        self.cols.contains(r, c)
    }

    /// Inserts edge `(r, c)`; `true` when it was not already live. May
    /// trigger compaction of both adjacency directions.
    pub fn insert(&mut self, r: Vidx, c: Vidx) -> bool {
        let changed = self.cols.insert(r, c);
        if changed {
            let also = self.rows.insert(c, r);
            debug_assert!(also, "row/col adjacency diverged on insert ({r}, {c})");
            self.maybe_compact();
        }
        changed
    }

    /// Deletes edge `(r, c)`; `true` when it was live.
    pub fn delete(&mut self, r: Vidx, c: Vidx) -> bool {
        let changed = self.cols.delete(r, c);
        if changed {
            let also = self.rows.delete(c, r);
            debug_assert!(also, "row/col adjacency diverged on delete ({r}, {c})");
            self.maybe_compact();
        }
        changed
    }

    /// Live degree of column `c`.
    #[inline]
    pub fn col_degree(&self, c: Vidx) -> usize {
        self.cols.col_degree(c)
    }

    /// Live degree of row `r`.
    #[inline]
    pub fn row_degree(&self, r: Vidx) -> usize {
        self.rows.col_degree(r)
    }

    /// Visits the rows adjacent to column `c` in sorted order.
    #[inline]
    pub fn for_each_row_in_col(&self, c: Vidx, f: impl FnMut(Vidx)) {
        self.cols.for_each_in_col(c, f)
    }

    /// Visits the columns adjacent to row `r` in sorted order.
    #[inline]
    pub fn for_each_col_in_row(&self, r: Vidx, f: impl FnMut(Vidx)) {
        self.rows.for_each_in_col(r, f)
    }

    /// Materializes the live edge set (sorted, deduplicated).
    pub fn to_triples(&self) -> Triples {
        self.cols.to_triples()
    }

    /// Materializes the live edge set as CSC.
    pub fn to_csc(&self) -> Csc {
        self.cols.to_csc()
    }

    /// Forces a compaction of both directions (one epoch bump).
    pub fn compact(&mut self) {
        self.cols.compact();
        self.rows.compact();
    }

    /// Staged overlay entries across both directions (diagnostic).
    #[inline]
    pub fn overlay_nnz(&self) -> usize {
        self.cols.overlay_nnz()
    }

    fn maybe_compact(&mut self) {
        if self.cols.overlay_nnz() > self.cols.nnz() / COMPACT_DIVISOR + COMPACT_SLACK {
            self.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_sparse::permute::SplitMix64;

    #[test]
    fn both_directions_stay_in_sync_under_random_ops() {
        let (n1, n2) = (17usize, 13usize);
        let mut g = DynGraph::empty(n1, n2);
        let mut rng = SplitMix64::new(42);
        for _ in 0..4000 {
            let r = rng.below(n1 as u64) as Vidx;
            let c = rng.below(n2 as u64) as Vidx;
            if rng.below(2) == 0 {
                g.insert(r, c);
            } else {
                g.delete(r, c);
            }
        }
        // The transpose of the column view must equal the row view.
        let a = g.to_csc();
        let mut from_rows = Triples::new(n1, n2);
        for r in 0..n1 as Vidx {
            g.for_each_col_in_row(r, |c| from_rows.push(r, c));
        }
        assert_eq!(from_rows.to_csc(), a);
        assert_eq!(a.nnz(), g.nnz());
    }

    #[test]
    fn auto_compaction_triggers_and_preserves_the_graph() {
        let mut g = DynGraph::empty(40, 40);
        let mut rng = SplitMix64::new(7);
        let epoch0 = g.epoch();
        for _ in 0..2000 {
            g.insert(rng.below(40) as Vidx, rng.below(40) as Vidx);
            g.delete(rng.below(40) as Vidx, rng.below(40) as Vidx);
        }
        assert!(g.epoch() > epoch0, "sustained churn never compacted");
        assert!(
            g.overlay_nnz() <= g.nnz() / COMPACT_DIVISOR + COMPACT_SLACK,
            "overlay exceeded the compaction bound"
        );
    }

    #[test]
    fn from_triples_roundtrip() {
        let t = Triples::from_edges(3, 5, vec![(0, 4), (2, 1), (1, 1)]);
        let g = DynGraph::from_triples(&t);
        let mut want = t.clone();
        want.sort_dedup();
        assert_eq!(g.to_triples(), want);
        assert_eq!(g.row_degree(1), 1);
        assert_eq!(g.col_degree(1), 2);
    }
}
